"""Data model of the constrained scheduling problem and its solutions.

The optimisation of Sec. 5.3 assigns exactly one ACMP configuration to each
scheduled event (Eqn. 2), models each event's latency with the DVFS model
(Eqn. 3), constrains each event to finish before its deadline given the
sequential execution order (Eqn. 4), and minimises total energy (Eqn. 5).

:class:`EventSpec` is one row of that problem — an event (outstanding or
predicted) with its release time, deadline, and per-configuration
latency/energy options.  :class:`Schedule` is a solved instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.schedulers.base import ConfigOption


@dataclass(frozen=True)
class EventSpec:
    """One event of a scheduling window.

    ``release_ms`` is the earliest time the event's execution may start
    (now, for speculative execution of predicted events; the arrival time
    for outstanding events).  ``deadline_ms`` is the absolute QoS deadline.
    ``options`` are the candidate configurations (latency/power per
    configuration, usually Pareto-pruned).  ``speculative`` marks predicted
    events, whose frames go through the pending frame buffer.
    """

    label: str
    release_ms: float
    deadline_ms: float
    options: tuple[ConfigOption, ...]
    speculative: bool = False

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError(f"event {self.label!r} has no configuration options")
        if self.deadline_ms < self.release_ms:
            raise ValueError(f"event {self.label!r} has a deadline before its release time")

    @property
    def fastest_option(self) -> ConfigOption:
        return min(self.options, key=lambda o: (o.latency_ms, o.energy_mj))

    @property
    def cheapest_option(self) -> ConfigOption:
        return min(self.options, key=lambda o: (o.energy_mj, o.latency_ms))


@dataclass(frozen=True)
class Assignment:
    """The chosen configuration and resulting timing for one event."""

    spec: EventSpec
    option: ConfigOption
    start_ms: float
    finish_ms: float

    @property
    def meets_deadline(self) -> bool:
        return self.finish_ms <= self.spec.deadline_ms + 1e-9

    @property
    def lateness_ms(self) -> float:
        return max(0.0, self.finish_ms - self.spec.deadline_ms)

    @property
    def energy_mj(self) -> float:
        return self.option.energy_mj


@dataclass(frozen=True)
class Schedule:
    """A solved scheduling window."""

    assignments: tuple[Assignment, ...]
    feasible: bool
    solver: str = "unspecified"

    @property
    def total_energy_mj(self) -> float:
        return sum(a.energy_mj for a in self.assignments)

    @property
    def total_lateness_ms(self) -> float:
        return sum(a.lateness_ms for a in self.assignments)

    @property
    def violations(self) -> int:
        return sum(1 for a in self.assignments if not a.meets_deadline)

    def __len__(self) -> int:
        return len(self.assignments)

    def __iter__(self):
        return iter(self.assignments)


def simulate_order(
    specs: Sequence[EventSpec], choices: Sequence[ConfigOption], window_start_ms: float
) -> tuple[Assignment, ...]:
    """Compute start/finish times for a fixed choice of options per event.

    Events execute sequentially on the runtime's main thread in the given
    order: each starts at the later of its release time and the previous
    event's finish.
    """
    if len(specs) != len(choices):
        raise ValueError("one option must be chosen per event spec")
    assignments: list[Assignment] = []
    clock = window_start_ms
    for spec, option in zip(specs, choices):
        start = max(clock, spec.release_ms)
        finish = start + option.latency_ms
        assignments.append(Assignment(spec=spec, option=option, start_ms=start, finish_ms=finish))
        clock = finish
    return tuple(assignments)
