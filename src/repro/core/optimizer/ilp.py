"""Custom solvers for the ILP scheduling formulation.

The paper implements its own solver rather than shipping a third-party LP
package (Sec. 5.5).  Two solvers are provided here:

* :class:`BranchAndBoundSolver` — exact.  It explores configuration choices
  event by event in execution order, pruning branches that (a) already miss
  a deadline, (b) cannot possibly beat the best energy found so far (lower
  bound = energy so far + the sum of per-event minimum energies of the
  remaining events), or (c) cannot finish the remaining events by their
  deadlines even at maximum performance.
* :class:`DynamicProgrammingSolver` — a fast approximation that discretises
  the timeline and keeps, per finish-time bucket, the cheapest way to reach
  it.  With a fine bucket (1–2 ms) its solutions match the exact solver on
  every instance the evaluation produces, while bounding the solve time.

:func:`relax_infeasible_deadlines` implements the "do your best" fallback
for windows containing Type I events: deadlines that cannot be met even at
maximum performance are pushed out to the earliest achievable finish time,
so the solver still returns a schedule (marked infeasible) that minimises
energy subject to minimal lateness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer.schedule import Assignment, EventSpec, Schedule, simulate_order
from repro.schedulers.base import ConfigOption


def _earliest_finishes(specs: list[EventSpec], window_start_ms: float) -> list[float]:
    """Finish times when every event runs at its fastest configuration."""
    finishes: list[float] = []
    clock = window_start_ms
    for spec in specs:
        start = max(clock, spec.release_ms)
        clock = start + spec.fastest_option.latency_ms
        finishes.append(clock)
    return finishes


def relax_infeasible_deadlines(
    specs: list[EventSpec], window_start_ms: float
) -> tuple[list[EventSpec], bool]:
    """Push impossible deadlines out so the window always has a solution.

    A window is infeasible when some event cannot meet its deadline even
    with every event at maximum performance (a Type I event, or a deadline
    tighter than the unavoidable work of its predecessors).  Such deadlines
    are replaced by a *lazy-predecessor* bound: the time the event could
    finish at maximum performance if every predecessor merely met its own
    (possibly relaxed) deadline.  This keeps the relaxed instance feasible
    by construction without dragging the predecessors' configurations to
    maximum performance — they are still scheduled against their own
    deadlines, so one impossible event does not distort the energy of the
    whole window.

    Returns the (possibly rewritten) specs and whether the original
    instance was feasible.
    """
    finishes = _earliest_finishes(specs, window_start_ms)
    feasible = all(f <= s.deadline_ms + 1e-9 for f, s in zip(finishes, specs))
    if feasible:
        return list(specs), True

    relaxed: list[EventSpec] = []
    previous_deadline = window_start_ms
    for spec, earliest in zip(specs, finishes):
        if earliest <= spec.deadline_ms + 1e-9:
            relaxed.append(spec)
        else:
            lazy_bound = max(spec.release_ms, previous_deadline) + spec.fastest_option.latency_ms
            relaxed.append(
                EventSpec(
                    label=spec.label,
                    release_ms=spec.release_ms,
                    deadline_ms=max(spec.deadline_ms, lazy_bound),
                    options=spec.options,
                    speculative=spec.speculative,
                )
            )
        previous_deadline = relaxed[-1].deadline_ms
    return relaxed, False


@dataclass
class BranchAndBoundSolver:
    """Exact branch-and-bound over per-event configuration choices."""

    #: Safety valve on explored nodes; far above what evaluation windows need.
    max_nodes: int = 200_000

    def solve(self, specs: list[EventSpec], window_start_ms: float) -> Schedule:
        if not specs:
            return Schedule(assignments=(), feasible=True, solver="branch-and-bound")
        working, feasible = relax_infeasible_deadlines(specs, window_start_ms)

        n = len(working)
        # Remaining minimum-energy suffix sums for the lower bound.
        min_energy_suffix = [0.0] * (n + 1)
        for i in range(n - 1, -1, -1):
            min_energy_suffix[i] = min_energy_suffix[i + 1] + working[i].cheapest_option.energy_mj
        # Remaining fastest latencies for the feasibility look-ahead.
        fastest = [spec.fastest_option.latency_ms for spec in working]

        best_energy = float("inf")
        best_choice: list[ConfigOption] | None = None
        nodes_explored = 0

        def remaining_feasible(index: int, clock: float) -> bool:
            for j in range(index, n):
                start = max(clock, working[j].release_ms)
                clock = start + fastest[j]
                if clock > working[j].deadline_ms + 1e-9:
                    return False
            return True

        def descend(index: int, clock: float, energy: float, chosen: list[ConfigOption]) -> None:
            nonlocal best_energy, best_choice, nodes_explored
            if nodes_explored >= self.max_nodes:
                return
            nodes_explored += 1
            if energy + min_energy_suffix[index] >= best_energy - 1e-12:
                return
            if index == n:
                best_energy = energy
                best_choice = list(chosen)
                return
            if not remaining_feasible(index, clock):
                return
            spec = working[index]
            # Cheapest-first so the first complete solution is already good,
            # which makes the energy bound effective early.
            for option in sorted(spec.options, key=lambda o: (o.energy_mj, o.latency_ms)):
                start = max(clock, spec.release_ms)
                finish = start + option.latency_ms
                if finish > spec.deadline_ms + 1e-9:
                    continue
                chosen.append(option)
                descend(index + 1, finish, energy + option.energy_mj, chosen)
                chosen.pop()

        descend(0, window_start_ms, 0.0, [])

        if best_choice is None:
            # Even the relaxed instance could not be solved within the node
            # budget (or an event has a single impossible option): fall back
            # to maximum performance everywhere.
            best_choice = [spec.fastest_option for spec in working]
            feasible = False

        assignments = simulate_order(specs, best_choice, window_start_ms)
        feasible = feasible and all(a.meets_deadline for a in assignments)
        return Schedule(assignments=assignments, feasible=feasible, solver="branch-and-bound")


@dataclass
class DynamicProgrammingSolver:
    """Time-discretised dynamic program over (event index, finish bucket)."""

    bucket_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")

    def solve(self, specs: list[EventSpec], window_start_ms: float) -> Schedule:
        if not specs:
            return Schedule(assignments=(), feasible=True, solver="dynamic-programming")
        working, feasible = relax_infeasible_deadlines(specs, window_start_ms)

        # States are finish times rounded *up* to a bucket boundary, so the
        # DP never claims a finish earlier than reality and its schedules
        # remain deadline-safe.
        def quantise(t: float) -> float:
            buckets = int((t - window_start_ms + self.bucket_ms - 1e-9) // self.bucket_ms)
            return window_start_ms + max(buckets, 0) * self.bucket_ms

        # frontier: finish_time -> (energy, choices)
        frontier: dict[float, tuple[float, tuple[ConfigOption, ...]]] = {
            window_start_ms: (0.0, ())
        }
        for spec in working:
            next_frontier: dict[float, tuple[float, tuple[ConfigOption, ...]]] = {}
            for clock, (energy, choices) in frontier.items():
                start = max(clock, spec.release_ms)
                for option in spec.options:
                    finish = start + option.latency_ms
                    if finish > spec.deadline_ms + 1e-9:
                        continue
                    key = quantise(finish)
                    candidate = (energy + option.energy_mj, choices + (option,))
                    incumbent = next_frontier.get(key)
                    if incumbent is None or candidate[0] < incumbent[0]:
                        next_frontier[key] = candidate
            if not next_frontier:
                # No feasible continuation: run everything remaining at max
                # performance (mirrors the exact solver's fallback).
                best = [spec2.fastest_option for spec2 in working]
                assignments = simulate_order(specs, best, window_start_ms)
                return Schedule(assignments=assignments, feasible=False, solver="dynamic-programming")
            frontier = self._prune(next_frontier)

        best_energy, best_choices = min(frontier.values(), key=lambda item: item[0])
        assignments = simulate_order(specs, list(best_choices), window_start_ms)
        feasible = feasible and all(a.meets_deadline for a in assignments)
        return Schedule(assignments=assignments, feasible=feasible, solver="dynamic-programming")

    @staticmethod
    def _prune(
        frontier: dict[float, tuple[float, tuple[ConfigOption, ...]]],
    ) -> dict[float, tuple[float, tuple[ConfigOption, ...]]]:
        """Drop states dominated by an earlier-finishing, cheaper state."""
        pruned: dict[float, tuple[float, tuple[ConfigOption, ...]]] = {}
        best_energy = float("inf")
        for finish in sorted(frontier):
            energy, choices = frontier[finish]
            if energy < best_energy - 1e-12:
                pruned[finish] = (energy, choices)
                best_energy = energy
        return pruned
