"""Custom solvers for the ILP scheduling formulation.

The paper implements its own solver rather than shipping a third-party LP
package (Sec. 5.5).  Two solvers are provided here:

* :class:`BranchAndBoundSolver` — exact.  It explores configuration choices
  event by event in execution order, pruning branches that (a) already miss
  a deadline, (b) cannot possibly beat the best energy found so far (lower
  bound = energy so far + the sum of per-event minimum energies of the
  remaining events), or (c) cannot finish the remaining events by their
  deadlines even at maximum performance.
* :class:`DynamicProgrammingSolver` — a fast approximation that discretises
  the timeline and keeps, per finish-time bucket, the cheapest way to reach
  it.  With a fine bucket (1–2 ms) its solutions match the exact solver on
  every instance the evaluation produces, while bounding the solve time.

:func:`relax_infeasible_deadlines` implements the "do your best" fallback
for windows containing Type I events: deadlines that cannot be met even at
maximum performance are pushed out to the earliest achievable finish time,
so the solver still returns a schedule (marked infeasible) that minimises
energy subject to minimal lateness.

Performance
-----------
``DynamicProgrammingSolver.solve`` is the hot path of the whole evaluation:
profiling a full ``Simulator.compare()`` run at the seed revision put ~93%
of the wall-clock inside it (19.3 s of 20.8 s profiled; tier-1 suite
~146 s).  The solver therefore works on an **integer bucket lattice**:

* a DP state is an integer bucket index relative to the window start
  (``finish = window_start + bucket * bucket_ms``), never a quantised
  float, so the inner loop is integer arithmetic with no function calls;
* the frontier is kept as **sorted parallel lists** (bucket indices
  ascending, energies strictly decreasing), which makes dominance pruning
  a single linear sweep and lets states that start before an event's
  release time collapse into one representative via ``bisect``;
* paths are reconstructed from **backpointers** into a node arena instead
  of concatenating ``choices + (option,)`` tuples per transition, removing
  the O(n²) allocation churn of the seed implementation.

On the profiled 4-app oracle workload this is ~27× faster than the seed
solver (0.35 → 9.7 whole-trace solves/s on windows of 31–48 events) with
bit-identical schedules (see ``tests/test_optimizer_equivalence.py``).
Run the regression benches with::

    PYTHONPATH=src python -m repro bench            # writes results/BENCH_*.json
    PYTHONPATH=src python -m pytest -m perf benchmarks/test_perf_solver.py

(the ``perf`` marker is deselected by default so tier-1 stays fast).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.optimizer.schedule import Assignment, EventSpec, Schedule, simulate_order
from repro.schedulers.base import ConfigOption


def _earliest_finishes(specs: list[EventSpec], window_start_ms: float) -> list[float]:
    """Finish times when every event runs at its fastest configuration."""
    finishes: list[float] = []
    clock = window_start_ms
    for spec in specs:
        start = max(clock, spec.release_ms)
        clock = start + spec.fastest_option.latency_ms
        finishes.append(clock)
    return finishes


def relax_infeasible_deadlines(
    specs: list[EventSpec], window_start_ms: float
) -> tuple[list[EventSpec], bool]:
    """Push impossible deadlines out so the window always has a solution.

    A window is infeasible when some event cannot meet its deadline even
    with every event at maximum performance (a Type I event, or a deadline
    tighter than the unavoidable work of its predecessors).  Such deadlines
    are replaced by a *lazy-predecessor* bound: the time the event could
    finish at maximum performance if every predecessor merely met its own
    (possibly relaxed) deadline.  This keeps the relaxed instance feasible
    by construction without dragging the predecessors' configurations to
    maximum performance — they are still scheduled against their own
    deadlines, so one impossible event does not distort the energy of the
    whole window.

    Returns the (possibly rewritten) specs and whether the original
    instance was feasible.
    """
    finishes = _earliest_finishes(specs, window_start_ms)
    feasible = all(f <= s.deadline_ms + 1e-9 for f, s in zip(finishes, specs))
    if feasible:
        return list(specs), True

    relaxed: list[EventSpec] = []
    previous_deadline = window_start_ms
    for spec, earliest in zip(specs, finishes):
        if earliest <= spec.deadline_ms + 1e-9:
            relaxed.append(spec)
        else:
            lazy_bound = max(spec.release_ms, previous_deadline) + spec.fastest_option.latency_ms
            relaxed.append(
                EventSpec(
                    label=spec.label,
                    release_ms=spec.release_ms,
                    deadline_ms=max(spec.deadline_ms, lazy_bound),
                    options=spec.options,
                    speculative=spec.speculative,
                )
            )
        previous_deadline = relaxed[-1].deadline_ms
    return relaxed, False


@dataclass
class BranchAndBoundSolver:
    """Exact branch-and-bound over per-event configuration choices."""

    #: Safety valve on explored nodes; far above what evaluation windows need.
    max_nodes: int = 200_000

    def solve(self, specs: list[EventSpec], window_start_ms: float) -> Schedule:
        if not specs:
            return Schedule(assignments=(), feasible=True, solver="branch-and-bound")
        working, feasible = relax_infeasible_deadlines(specs, window_start_ms)

        n = len(working)
        # Remaining minimum-energy suffix sums for the lower bound.
        min_energy_suffix = [0.0] * (n + 1)
        for i in range(n - 1, -1, -1):
            min_energy_suffix[i] = min_energy_suffix[i + 1] + working[i].cheapest_option.energy_mj
        # Remaining fastest latencies for the feasibility look-ahead.
        fastest = [spec.fastest_option.latency_ms for spec in working]

        best_energy = float("inf")
        best_choice: list[ConfigOption] | None = None
        nodes_explored = 0

        def remaining_feasible(index: int, clock: float) -> bool:
            for j in range(index, n):
                start = max(clock, working[j].release_ms)
                clock = start + fastest[j]
                if clock > working[j].deadline_ms + 1e-9:
                    return False
            return True

        def descend(index: int, clock: float, energy: float, chosen: list[ConfigOption]) -> None:
            nonlocal best_energy, best_choice, nodes_explored
            if nodes_explored >= self.max_nodes:
                return
            nodes_explored += 1
            if energy + min_energy_suffix[index] >= best_energy - 1e-12:
                return
            if index == n:
                best_energy = energy
                best_choice = list(chosen)
                return
            if not remaining_feasible(index, clock):
                return
            spec = working[index]
            # Cheapest-first so the first complete solution is already good,
            # which makes the energy bound effective early.
            for option in sorted(spec.options, key=lambda o: (o.energy_mj, o.latency_ms)):
                start = max(clock, spec.release_ms)
                finish = start + option.latency_ms
                if finish > spec.deadline_ms + 1e-9:
                    continue
                chosen.append(option)
                descend(index + 1, finish, energy + option.energy_mj, chosen)
                chosen.pop()

        descend(0, window_start_ms, 0.0, [])

        if best_choice is None:
            # Even the relaxed instance could not be solved within the node
            # budget (or an event has a single impossible option): fall back
            # to maximum performance everywhere.
            best_choice = [spec.fastest_option for spec in working]
            feasible = False

        assignments = simulate_order(specs, best_choice, window_start_ms)
        feasible = feasible and all(a.meets_deadline for a in assignments)
        return Schedule(assignments=assignments, feasible=feasible, solver="branch-and-bound")


@dataclass
class DynamicProgrammingSolver:
    """Time-discretised dynamic program over (event index, finish bucket).

    States live on an integer bucket lattice anchored at the window start:
    bucket ``b`` represents a finish time of ``window_start + b * bucket_ms``,
    rounded *up* so the DP never claims a finish earlier than reality and its
    schedules remain deadline-safe.  The frontier after each event is three
    parallel lists sorted by bucket index with strictly decreasing energies
    (every dominated state pruned), and each state carries a backpointer into
    a node arena from which the chosen options are reconstructed at the end.
    """

    bucket_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")

    def solve(self, specs: list[EventSpec], window_start_ms: float) -> Schedule:
        if not specs:
            return Schedule(assignments=(), feasible=True, solver="dynamic-programming")
        working, feasible = relax_infeasible_deadlines(specs, window_start_ms)

        bucket = self.bucket_ms
        round_guard = bucket - 1e-9

        # Frontier: parallel arrays sorted by bucket index ascending with
        # strictly decreasing energies (every dominated state pruned).
        # ``nodes`` holds per-state backpointers into the arena; the root
        # state points at -1.
        bucket_arr = np.zeros(1, dtype=np.int64)
        energy_arr = np.zeros(1, dtype=np.float64)
        nodes: list[int] = [-1]
        arena_options: list[ConfigOption] = []
        arena_parents: list[int] = []

        for spec in working:
            release = spec.release_ms
            deadline = spec.deadline_ms + 1e-9
            # Ascending latency; every option's lattice shift is the constant
            # ``delta`` buckets its latency rounds up to.
            option_data = sorted(
                ((o.latency_ms, o.energy_mj, int((o.latency_ms + round_guard) // bucket), o)
                 for o in spec.options),
                key=lambda item: (item[0], item[1]),
            )

            n_states = len(bucket_arr)
            # Lattice clocks and starts (all frontier states sit on the lattice).
            start_arr = window_start_ms + bucket_arr * bucket

            # Every state whose clock is at or before the release time starts
            # at the release time and yields identical transitions; only the
            # cheapest such state (the last one, energies being decreasing)
            # can win, so collapse the prefix to that single representative.
            first = int(np.searchsorted(start_arr, release, side="right"))
            # Repair any float disagreement so the prefix/suffix split matches
            # the ``clock > release`` test exactly.
            while first < n_states and start_arr[first] <= release:
                first += 1
            while first > 0 and start_arr[first - 1] > release:
                first -= 1
            scan_from = first - 1 if first > 0 else 0

            # -- prefix representative (start pinned at the release time) ----
            prefix_candidates: list[tuple[int, float, int]] = []
            if first > 0:
                start = release
                energy = float(energy_arr[scan_from])
                for j, (latency, option_energy, _delta, _option) in enumerate(option_data):
                    finish = start + latency
                    if finish > deadline:
                        continue
                    key = int((finish - window_start_ms + round_guard) // bucket)
                    if key < 0:
                        key = 0
                    prefix_candidates.append((key, energy + option_energy, j))

            # -- per-option feasibility cut over the lattice states ----------
            cuts: list[int] = []
            key_min: int | None = None
            key_max: int | None = None
            for latency, _option_energy, delta, _option in option_data:
                cut = int(np.searchsorted(start_arr, deadline - latency, side="right"))
                # Repair to the exact ``start + latency > deadline`` test.
                while cut < n_states and start_arr[cut] + latency <= deadline:
                    cut += 1
                while cut > 0 and start_arr[cut - 1] + latency > deadline:
                    cut -= 1
                cuts.append(cut)
                if cut > first:
                    low = int(bucket_arr[first]) + delta
                    high = int(bucket_arr[cut - 1]) + delta
                    key_min = low if key_min is None or low < key_min else key_min
                    key_max = high if key_max is None or high > key_max else key_max
            for key, _total, _j in prefix_candidates:
                key_min = key if key_min is None or key < key_min else key_min
                key_max = key if key_max is None or key > key_max else key_max

            if key_min is None:
                # No feasible continuation: run everything remaining at max
                # performance (mirrors the exact solver's fallback).
                best = [spec2.fastest_option for spec2 in working]
                assignments = simulate_order(specs, best, window_start_ms)
                return Schedule(assignments=assignments, feasible=False, solver="dynamic-programming")

            span = key_max - key_min + 1
            best_energy_arr = np.full(span, np.inf, dtype=np.float64)
            winner_option = np.full(span, -1, dtype=np.int64)
            winner_state = np.full(span, -1, dtype=np.int64)

            for key, total, j in prefix_candidates:
                idx = key - key_min
                if total < best_energy_arr[idx]:
                    best_energy_arr[idx] = total
                    winner_option[idx] = j
                    winner_state[idx] = scan_from

            for j, (_latency, option_energy, delta, _option) in enumerate(option_data):
                cut = cuts[j]
                if cut <= first:
                    continue
                # Within one option the target keys are strictly increasing,
                # so the fancy-indexed compare-and-store below has no
                # intra-option collisions; across options the sequential
                # strict ``<`` keeps the cheapest candidate per key.
                keys = bucket_arr[first:cut] + (delta - key_min)
                totals = energy_arr[first:cut] + option_energy
                current = best_energy_arr[keys]
                improved = totals < current
                if improved.any():
                    hit = keys[improved]
                    best_energy_arr[hit] = totals[improved]
                    winner_option[hit] = j
                    winner_state[hit] = np.nonzero(improved)[0] + first

            # Dominance prune in one linear sweep over ascending keys,
            # keeping only strict energy improvements; survivors (and only
            # survivors) get arena nodes recording (option, parent).
            best_list = best_energy_arr.tolist()
            option_ids = winner_option.tolist()
            state_ids = winner_state.tolist()
            new_buckets: list[int] = []
            new_energies: list[float] = []
            new_nodes: list[int] = []
            best_energy = float("inf")
            for idx in range(span):
                energy = best_list[idx]
                if energy < best_energy - 1e-12:
                    new_buckets.append(idx + key_min)
                    new_energies.append(energy)
                    new_nodes.append(len(arena_options))
                    arena_options.append(option_data[option_ids[idx]][3])
                    arena_parents.append(nodes[state_ids[idx]])
                    best_energy = energy

            bucket_arr = np.asarray(new_buckets, dtype=np.int64)
            energy_arr = np.asarray(new_energies, dtype=np.float64)
            nodes = new_nodes

        # After pruning, energies decrease with bucket index: the last state
        # is the cheapest.  Walk its backpointer chain to recover the options.
        choices: list[ConfigOption] = []
        node = nodes[-1]
        while node != -1:
            choices.append(arena_options[node])
            node = arena_parents[node]
        choices.reverse()

        assignments = simulate_order(specs, choices, window_start_ms)
        feasible = feasible and all(a.meets_deadline for a in assignments)
        return Schedule(assignments=assignments, feasible=feasible, solver="dynamic-programming")
