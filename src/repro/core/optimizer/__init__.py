"""Energy/QoS global optimizer: the constrained-optimisation scheduler core."""

from repro.core.optimizer.schedule import EventSpec, Assignment, Schedule
from repro.core.optimizer.ilp import (
    BranchAndBoundSolver,
    DynamicProgrammingSolver,
    relax_infeasible_deadlines,
)
from repro.core.optimizer.optimizer import (
    GlobalOptimizer,
    WorkloadEstimator,
    ArrivalEstimator,
)

__all__ = [
    "EventSpec",
    "Assignment",
    "Schedule",
    "BranchAndBoundSolver",
    "DynamicProgrammingSolver",
    "relax_infeasible_deadlines",
    "GlobalOptimizer",
    "WorkloadEstimator",
    "ArrivalEstimator",
]
