"""Global optimizer: builds and solves the speculative scheduling window.

Upon receiving the predicted event sequence, the optimizer combines it with
any outstanding events and computes the speculative schedule: one ACMP
configuration per event, minimising total energy under every event's QoS
deadline (Sec. 5.3).

Two estimators feed the formulation for *predicted* events, whose concrete
workload and arrival time are not yet known:

* :class:`WorkloadEstimator` — per-event-type calibration of the DVFS model
  from previously executed events (the paper measures each event the first
  two times it is encountered; here every completed execution updates a
  running per-type average, seeded from the application's typical
  workload).
* :class:`ArrivalEstimator` — per-interaction running average of the user's
  inter-arrival gaps, scaled by a conservatism factor so the schedule stays
  deadline-safe when the user acts faster than their average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.optimizer.ilp import BranchAndBoundSolver, DynamicProgrammingSolver
from repro.core.optimizer.schedule import EventSpec, Schedule
from repro.core.predictor.sequence_learner import PredictedEvent
from repro.hardware.acmp import AcmpSystem
from repro.hardware.dvfs import DvfsModel
from repro.hardware.power import PowerTable
from repro.schedulers.base import enumerate_options
from repro.traces.trace import TraceEvent
from repro.traces.workload import WorkloadModel
from repro.webapp.apps import AppProfile
from repro.webapp.events import EventType, Interaction, interaction_of, qos_target_ms


@dataclass
class WorkloadEstimator:
    """Running per-event-type estimate of the DVFS workload parameters."""

    profile: AppProfile
    _model: WorkloadModel = field(init=False)
    _sum_tmem: dict[EventType, float] = field(default_factory=dict)
    _sum_ndep: dict[EventType, float] = field(default_factory=dict)
    _count: dict[EventType, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._model = WorkloadModel(self.profile)

    def record(self, event_type: EventType, workload: DvfsModel) -> None:
        """Record the measured workload of a completed event."""
        self._sum_tmem[event_type] = self._sum_tmem.get(event_type, 0.0) + workload.tmem_ms
        self._sum_ndep[event_type] = self._sum_ndep.get(event_type, 0.0) + workload.ndep_mcycles
        self._count[event_type] = self._count.get(event_type, 0) + 1

    def estimate(self, event_type: EventType) -> DvfsModel:
        """Expected workload for the next event of this type."""
        count = self._count.get(event_type, 0)
        if count == 0:
            return self._model.typical(event_type)
        return DvfsModel(
            tmem_ms=self._sum_tmem[event_type] / count,
            ndep_mcycles=self._sum_ndep[event_type] / count,
        )

    def observations(self, event_type: EventType) -> int:
        return self._count.get(event_type, 0)

    def reset(self) -> None:
        """Forget every recorded measurement (new session)."""
        self._sum_tmem.clear()
        self._sum_ndep.clear()
        self._count.clear()


@dataclass
class ArrivalEstimator:
    """Running estimate of user inter-arrival gaps per interaction class.

    The estimate used for deadlines is deliberately pessimistic: a low
    quantile of the gaps observed so far (per interaction class), scaled by
    ``conservatism``.  User think times are long-tailed and bi-modal (slow
    deliberate interactions mixed with rapid bursts), so planning against a
    mean would let speculative frames finish after a burst's next input has
    already arrived; planning against a low quantile keeps the speculative
    schedule deadline-safe at the cost of a slightly less aggressive energy
    optimisation.
    """

    conservatism: float = 0.8
    quantile: float = 0.25
    max_samples: int = 200
    initial_gap_ms: dict[Interaction, float] = field(
        default_factory=lambda: {
            Interaction.LOAD: 2500.0,
            Interaction.TAP: 900.0,
            Interaction.MOVE: 300.0,
        }
    )
    _gaps: dict[Interaction, list[float]] = field(default_factory=dict)
    _last_arrival_ms: float | None = None
    _last_interaction: Interaction | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.conservatism <= 1.0:
            raise ValueError("conservatism must be in (0, 1]")
        if not 0.0 < self.quantile <= 0.5:
            raise ValueError("quantile must be in (0, 0.5]")
        if self.max_samples <= 0:
            raise ValueError("max_samples must be positive")

    def record_arrival(self, event_type: EventType, arrival_ms: float) -> None:
        """Record an actual event arrival to refine the gap estimates."""
        interaction = interaction_of(event_type)
        if self._last_arrival_ms is not None and arrival_ms >= self._last_arrival_ms:
            gaps = self._gaps.setdefault(interaction, [])
            gaps.append(arrival_ms - self._last_arrival_ms)
            if len(gaps) > self.max_samples:
                del gaps[0]
        self._last_arrival_ms = arrival_ms
        self._last_interaction = interaction

    def reset(self) -> None:
        """Forget every observed gap (new session)."""
        self._gaps.clear()
        self._last_arrival_ms = None
        self._last_interaction = None

    def expected_gap_ms(self, event_type: EventType) -> float:
        """Pessimistic estimate of the gap before an event of this type."""
        interaction = interaction_of(event_type)
        gaps = self._gaps.get(interaction)
        if not gaps:
            estimate = self.initial_gap_ms[interaction]
        else:
            estimate = float(np.quantile(gaps, self.quantile))
        return self.conservatism * estimate


@dataclass
class GlobalOptimizer:
    """Formulates and solves the energy/QoS scheduling window (Eqn. 2–5)."""

    system: AcmpSystem
    power_table: PowerTable
    workload_estimator: WorkloadEstimator
    arrival_estimator: ArrivalEstimator = field(default_factory=ArrivalEstimator)
    use_exact_solver: bool = True
    dp_bucket_ms: float = 2.0
    #: Small reserve per event for the rendering hand-off / VSync quantisation.
    safety_margin_ms: float = 8.0

    def __post_init__(self) -> None:
        self._bb = BranchAndBoundSolver()
        self._dp = DynamicProgrammingSolver(bucket_ms=self.dp_bucket_ms)

    # -- spec construction -------------------------------------------------------

    def _options_for(self, workload: DvfsModel, system: AcmpSystem | None = None):
        return tuple(
            enumerate_options(
                system if system is not None else self.system,
                self.power_table,
                workload,
                pareto_only=True,
            )
        )

    def build_specs(
        self,
        now_ms: float,
        outstanding: list[TraceEvent],
        predicted: list[PredictedEvent],
        *,
        system: AcmpSystem | None = None,
    ) -> list[EventSpec]:
        """Combine outstanding and predicted events into one scheduling window.

        Outstanding events keep their true arrival and deadline.  Predicted
        events are released immediately (that is the proactive part) and get
        deadlines derived from conservatively estimated arrival times.

        ``system`` overrides the platform the window's options are
        enumerated over — the dynamic thermal engine passes the throttled
        platform of the moment so the solver only branches over operating
        points the governor would actually admit.  ``None`` keeps the
        optimizer's own (session-constant) platform.
        """
        specs: list[EventSpec] = []
        horizon = now_ms
        for event in outstanding:
            specs.append(
                EventSpec(
                    label=f"outstanding-{event.index}",
                    release_ms=event.arrival_ms,
                    deadline_ms=max(
                        event.deadline_ms - self.safety_margin_ms, event.arrival_ms
                    ),
                    options=self._options_for(event.workload, system),
                    speculative=False,
                )
            )
            horizon = max(horizon, event.deadline_ms)

        predicted_arrival = now_ms
        for position, prediction in enumerate(predicted):
            predicted_arrival += self.arrival_estimator.expected_gap_ms(prediction.event_type)
            workload = self.workload_estimator.estimate(prediction.event_type)
            deadline = predicted_arrival + qos_target_ms(prediction.event_type)
            specs.append(
                EventSpec(
                    label=f"predicted-{position}-{prediction.event_type.value}",
                    release_ms=now_ms,
                    deadline_ms=max(deadline - self.safety_margin_ms, now_ms),
                    options=self._options_for(workload, system),
                    speculative=True,
                )
            )
        return specs

    # -- solving ------------------------------------------------------------------

    def solve(self, specs: list[EventSpec], now_ms: float) -> Schedule:
        solver = self._bb if self.use_exact_solver else self._dp
        return solver.solve(specs, now_ms)

    def compute_schedule(
        self,
        now_ms: float,
        outstanding: list[TraceEvent],
        predicted: list[PredictedEvent],
        *,
        system: AcmpSystem | None = None,
    ) -> Schedule:
        """End-to-end: build the window from events and solve it.

        ``system`` optionally narrows the window to a (thermally) capped
        platform; see :meth:`build_specs`.
        """
        specs = self.build_specs(now_ms, outstanding, predicted, system=system)
        return self.solve(specs, now_ms)
