"""Control unit: validates predictions and recovers from mis-predictions.

The control unit monitors actual user input events and compares them with
the head of the predicted sequence.  A match commits the corresponding
speculative frame from the Pending Frame Buffer to the application; a
mismatch squashes every remaining speculative frame, terminates the
dispatcher, and asks the predictor to restart.  After more than
``disable_after`` consecutive mis-predictions the control unit disables
prediction altogether and PES falls back to the best reactive scheduler
(EBS), which keeps PES robust against unexpected behaviour (Sec. 5.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.control.pfb import PendingFrameBuffer, SpeculativeFrame
from repro.core.predictor.sequence_learner import PredictedEvent
from repro.webapp.events import EventType


class MatchResult(enum.Enum):
    """Outcome of validating an actual event against the predicted sequence."""

    MATCH = "match"
    MISPREDICT = "mispredict"
    NO_PREDICTION = "no_prediction"


@dataclass
class ControlUnit:
    """Tracks the predicted-event queue, the PFB, and mis-prediction state."""

    disable_after: int = 3
    pfb: PendingFrameBuffer = field(default_factory=PendingFrameBuffer)
    pending: list[PredictedEvent] = field(default_factory=list)
    consecutive_mispredictions: int = 0
    prediction_enabled: bool = True
    commits: int = 0
    mispredictions: int = 0
    rounds: int = 0

    def __post_init__(self) -> None:
        if self.disable_after <= 0:
            raise ValueError("disable_after must be positive")

    # -- prediction rounds --------------------------------------------------------

    def begin_round(self, predictions: list[PredictedEvent]) -> None:
        """Install a new predicted sequence (after the previous one drained)."""
        if self.pending:
            raise RuntimeError("cannot begin a round while predictions are still pending")
        self.pending = list(predictions)
        if predictions:
            self.rounds += 1

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    @property
    def next_pending(self) -> PredictedEvent | None:
        return self.pending[0] if self.pending else None

    # -- validation ----------------------------------------------------------------

    def validate(self, actual_type: EventType) -> MatchResult:
        """Compare an actual event against the head of the predicted sequence."""
        if not self.prediction_enabled or not self.pending:
            return MatchResult.NO_PREDICTION
        if self.pending[0].event_type == actual_type:
            return MatchResult.MATCH
        return MatchResult.MISPREDICT

    def confirm_match(self, now_ms: float) -> SpeculativeFrame | None:
        """Consume the matched prediction; commit its frame if one is buffered."""
        if not self.pending:
            raise RuntimeError("no pending prediction to confirm")
        self.pending.pop(0)
        self.commits += 1
        self.consecutive_mispredictions = 0
        if not self.pfb.is_empty:
            return self.pfb.commit_head(now_ms)
        return None

    def handle_mispredict(self, now_ms: float) -> list[SpeculativeFrame]:
        """Squash all speculative state and update the mis-prediction counters."""
        self.pending.clear()
        self.mispredictions += 1
        self.consecutive_mispredictions += 1
        squashed = self.pfb.squash_all(now_ms)
        if self.consecutive_mispredictions > self.disable_after:
            self.prediction_enabled = False
        return squashed

    # -- lifecycle -------------------------------------------------------------------

    def reset(self) -> None:
        self.pending.clear()
        self.pfb = PendingFrameBuffer()
        self.consecutive_mispredictions = 0
        self.prediction_enabled = True
        self.commits = 0
        self.mispredictions = 0
        self.rounds = 0
