"""Event dispatcher: issues the speculative schedule to the rendering engine.

The dispatcher walks the optimizer's schedule in order, setting up the
hardware configuration for each event and handing the event to the
rendering engine.  It stops as soon as the control unit signals a
mis-prediction.  One practical rule from Sec. 5.3 is represented
explicitly: network requests of speculatively executed events are
suppressed until the event is confirmed, because network side effects are
irreversible — the ``network_suppressed`` flag on each dispatched
execution records that the speculative run skipped them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.optimizer.schedule import Assignment, Schedule


@dataclass(frozen=True)
class DispatchedExecution:
    """One schedule entry handed to the rendering engine."""

    assignment: Assignment
    network_suppressed: bool

    @property
    def is_speculative(self) -> bool:
        return self.assignment.spec.speculative


@dataclass
class EventDispatcher:
    """Sequential issue of a speculative schedule, stoppable on mis-prediction."""

    schedule: Schedule | None = None
    cursor: int = 0
    stopped: bool = False
    issued: list[DispatchedExecution] = field(default_factory=list)

    def load(self, schedule: Schedule) -> None:
        """Install a freshly computed speculative schedule."""
        self.schedule = schedule
        self.cursor = 0
        self.stopped = False

    @property
    def has_next(self) -> bool:
        return (
            not self.stopped
            and self.schedule is not None
            and self.cursor < len(self.schedule.assignments)
        )

    def issue_next(self) -> DispatchedExecution:
        """Issue the next assignment to the rendering engine."""
        if not self.has_next:
            raise LookupError("no assignment available to dispatch")
        assert self.schedule is not None
        assignment = self.schedule.assignments[self.cursor]
        self.cursor += 1
        execution = DispatchedExecution(
            assignment=assignment,
            network_suppressed=assignment.spec.speculative,
        )
        self.issued.append(execution)
        return execution

    def remaining(self) -> list[Assignment]:
        """Assignments not yet issued (dropped when a mis-prediction stops us)."""
        if self.schedule is None:
            return []
        return list(self.schedule.assignments[self.cursor :])

    def stop(self) -> None:
        """Terminate dispatching (mis-prediction signal from the control unit)."""
        self.stopped = True

    def reset(self) -> None:
        self.schedule = None
        self.cursor = 0
        self.stopped = False
        self.issued.clear()
