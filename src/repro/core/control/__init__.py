"""PES control unit: pending frame buffer, commit/squash, event dispatch."""

from repro.core.control.pfb import PendingFrameBuffer, SpeculativeFrame
from repro.core.control.control_unit import ControlUnit, MatchResult
from repro.core.control.dispatcher import EventDispatcher, DispatchedExecution

__all__ = [
    "PendingFrameBuffer",
    "SpeculativeFrame",
    "ControlUnit",
    "MatchResult",
    "EventDispatcher",
    "DispatchedExecution",
]
