"""Pending Frame Buffer (PFB).

Speculative frames produced by the rendering engine for predicted events
are parked in the PFB until the control unit either commits them (the
actual user event matched the prediction) or squashes them all (a
mis-prediction).  The PFB size over time is the quantity plotted in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.acmp import AcmpConfig
from repro.webapp.events import EventType


@dataclass(frozen=True)
class SpeculativeFrame:
    """One speculative frame and the cost of producing it.

    ``started_ms`` / ``ready_ms`` bound the window in which the frame's CPU
    work executed; ``cpu_time_ms`` and ``energy_mj`` are the work spent on
    it (wasted if the frame is later squashed).
    """

    sequence: int
    event_type: EventType
    node_id: str
    config: AcmpConfig
    started_ms: float
    ready_ms: float
    cpu_time_ms: float
    energy_mj: float

    def __post_init__(self) -> None:
        if self.ready_ms < self.started_ms:
            raise ValueError("a frame cannot be ready before it started")
        if self.cpu_time_ms < 0 or self.energy_mj < 0:
            raise ValueError("frame costs must be non-negative")


@dataclass
class PendingFrameBuffer:
    """FIFO of speculative frames awaiting commit or squash."""

    frames: list[SpeculativeFrame] = field(default_factory=list)
    #: (time, size) samples recorded at every mutation, for Fig. 9.
    size_history: list[tuple[float, int]] = field(default_factory=list)
    committed: int = 0
    squashed: int = 0

    def push(self, frame: SpeculativeFrame, now_ms: float) -> None:
        if self.frames and frame.sequence <= self.frames[-1].sequence:
            raise ValueError("frames must be pushed in increasing sequence order")
        self.frames.append(frame)
        self._record(now_ms)

    def peek(self) -> SpeculativeFrame | None:
        return self.frames[0] if self.frames else None

    def commit_head(self, now_ms: float) -> SpeculativeFrame:
        """Commit (pop) the oldest speculative frame for display."""
        if not self.frames:
            raise LookupError("cannot commit from an empty pending frame buffer")
        frame = self.frames.pop(0)
        self.committed += 1
        self._record(now_ms)
        return frame

    def squash_all(self, now_ms: float) -> list[SpeculativeFrame]:
        """Drop every pending frame (mis-prediction recovery)."""
        dropped = list(self.frames)
        self.frames.clear()
        self.squashed += len(dropped)
        self._record(now_ms)
        return dropped

    def _record(self, now_ms: float) -> None:
        self.size_history.append((now_ms, len(self.frames)))

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def is_empty(self) -> bool:
        return not self.frames
