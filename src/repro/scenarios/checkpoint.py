"""Crash-tolerant checkpointing for matrix runs.

A :class:`MatrixJournal` is an append-only JSON-lines file sitting next to
the final artefact: every time a scenario cell finishes (the
``on_sweep_complete`` hook of
:meth:`~repro.runtime.parallel.ParallelEvaluator.evaluate_matrix`), its
fully-serialised :class:`~repro.scenarios.runner.ScenarioResult` is
appended and fsynced.  If the run dies — worker crash, OOM kill, Ctrl-C —
the journal holds every completed cell; re-running with ``--resume`` skips
those cells and replays only the remainder.

Two properties make resume safe:

* **Torn tails are dropped, not fatal.**  A crash mid-append leaves a
  truncated last line; :meth:`MatrixJournal.entries` stops at the first
  unparseable line, so that cell simply re-runs.
* **Stale entries are ignored by content, not position.**  A journal entry
  only counts as completed if its serialised spec matches a spec of the
  *current* run exactly, so editing the matrix between runs silently
  invalidates exactly the cells that changed.

Because every replay is deterministic and
:meth:`~repro.scenarios.runner.ScenarioResult.to_dict` round-trips
losslessly through JSON, a resumed run's final artefact is byte-identical
to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.scenarios.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.scenarios.runner import ScenarioResult


class ArtefactError(RuntimeError):
    """A results artefact or journal is unreadable (truncated/corrupt JSON)."""


def _spec_key(spec_payload: dict) -> str:
    """Canonical content key for matching journal entries to current specs."""
    return json.dumps(spec_payload, sort_keys=True)


@dataclass
class MatrixJournal:
    """Append-only per-cell checkpoint file for a scenario matrix run."""

    path: Path

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    def append(self, result: "ScenarioResult") -> None:
        """Durably record one completed cell (flushed and fsynced)."""
        line = json.dumps(result.to_dict())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def entries(self) -> list[dict]:
        """Parsed journal entries, dropping a torn tail from a mid-write crash."""
        if not self.path.exists():
            return []
        entries: list[dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    # A torn last line means the run died mid-append; the
                    # cell it belonged to simply re-runs.  Anything after it
                    # cannot be trusted either.
                    break
        return entries

    def completed_results(
        self, specs: Sequence[ScenarioSpec]
    ) -> dict[str, "ScenarioResult"]:
        """Journaled results matching the given specs, keyed by spec name.

        Matching is by full serialised spec content: an entry whose spec
        does not exactly match one of ``specs`` (the matrix changed since
        the journal was written) is ignored, so its cell re-runs.
        """
        from repro.scenarios.runner import ScenarioResult

        wanted = {_spec_key(spec.to_dict()): spec.name for spec in specs}
        completed: dict[str, ScenarioResult] = {}
        for entry in self.entries():
            spec_payload = entry.get("spec")
            if not isinstance(spec_payload, dict):
                continue
            name = wanted.get(_spec_key(spec_payload))
            if name is None:
                continue
            completed[name] = ScenarioResult.from_dict(entry)
        return completed

    def clear(self) -> None:
        """Delete the journal (a fresh, non-resumed run starts clean)."""
        self.path.unlink(missing_ok=True)
