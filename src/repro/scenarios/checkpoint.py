"""Crash-tolerant checkpointing for matrix runs.

A :class:`MatrixJournal` is an append-only JSON-lines file sitting next to
the final artefact: every time a scenario cell finishes (the
``on_sweep_complete`` hook of
:meth:`~repro.runtime.parallel.ParallelEvaluator.evaluate_matrix`), its
fully-serialised :class:`~repro.scenarios.runner.ScenarioResult` is
appended and fsynced.  If the run dies — worker crash, OOM kill, Ctrl-C —
the journal holds every completed cell; re-running with ``--resume`` skips
those cells and replays only the remainder.

A :class:`ShardJournal` checkpoints one level finer: *within* a cell, per
(scheme, trace) shard.  Each shard record carries the shard's complete
serialised :class:`~repro.runtime.metrics.SessionResult`, and each cell
record carries whatever summary the producer scores a finished cell with.
The adversarial fault search (:mod:`repro.faults.search`) journals every
candidate through one, so a search killed mid-candidate resumes without
re-simulating the shards that already ran — and, because appends happen in
a deterministic order and :meth:`ShardJournal.open_for_resume` truncates
any torn tail before new appends, the resumed journal file itself is
byte-identical to an uninterrupted run's.

Two properties make resume safe:

* **Torn tails are dropped, not fatal.**  A crash mid-append leaves a
  truncated last line; the newline-strict scan (:func:`_scan_jsonl`) stops
  at the first line that is unparseable *or* missing its terminating
  newline, so that cell simply re-runs — and
  :meth:`MatrixJournal.open_for_resume` /
  :meth:`ShardJournal.open_for_resume` truncate the torn bytes before any
  new append can concatenate onto them.
* **Stale entries are ignored by content, not position.**  A journal entry
  only counts as completed if its serialised spec matches a spec of the
  *current* run exactly, so editing the matrix between runs silently
  invalidates exactly the cells that changed.

Because every replay is deterministic and
:meth:`~repro.scenarios.runner.ScenarioResult.to_dict` round-trips
losslessly through JSON, a resumed run's final artefact is byte-identical
to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.scenarios.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.scenarios.runner import ScenarioResult


class ArtefactError(RuntimeError):
    """A results artefact or journal is unreadable (truncated/corrupt JSON)."""


def _spec_key(spec_payload: dict) -> str:
    """Canonical content key for matching journal entries to current specs."""
    return json.dumps(spec_payload, sort_keys=True)


def _scan_jsonl(path: Path) -> tuple[list[dict], int]:
    """Parsed JSON-lines records plus the byte offset of the valid prefix.

    Newline-strict: a last line without its trailing ``\\n`` is torn even
    when it happens to parse as complete JSON — the crash may have cut the
    write anywhere, and a later append would concatenate onto those bytes
    and corrupt *two* records.  Scanning stops at the first torn or
    unparseable line; the offset lets ``open_for_resume`` cut the torn
    bytes off before new appends land.
    """
    if not path.exists():
        return [], 0
    records: list[dict] = []
    valid_end = 0
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break
            stripped = raw.decode("utf-8").strip()
            if stripped:
                try:
                    records.append(json.loads(stripped))
                except json.JSONDecodeError:
                    break
            valid_end += len(raw)
    return records, valid_end


@dataclass
class MatrixJournal:
    """Append-only per-cell checkpoint file for a scenario matrix run."""

    path: Path

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    def append(self, result: "ScenarioResult") -> None:
        """Durably record one completed cell (flushed and fsynced)."""
        line = json.dumps(result.to_dict())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def entries(self) -> list[dict]:
        """Parsed journal entries, dropping a torn tail from a mid-write crash.

        Newline-strict (see :func:`_scan_jsonl`): a final line missing its
        ``\\n`` is torn even if it parses, because a later append would
        concatenate onto it and corrupt both records.  The cell a torn
        line belonged to simply re-runs.
        """
        records, _ = _scan_jsonl(self.path)
        return records

    def open_for_resume(self) -> list[dict]:
        """:meth:`entries`, truncating any torn tail first.

        Called at the start of a resumed run so that subsequent
        :meth:`append` calls land exactly where an uninterrupted run would
        have written them — the resumed journal file stays byte-identical
        to an uninterrupted one, and a complete-but-unterminated last line
        can never be corrupted by concatenation.
        """
        records, valid_end = _scan_jsonl(self.path)
        if self.path.exists() and valid_end < self.path.stat().st_size:
            with open(self.path, "rb+") as handle:
                handle.truncate(valid_end)
        return records

    def completed_results(
        self, specs: Sequence[ScenarioSpec]
    ) -> dict[str, "ScenarioResult"]:
        """Journaled results matching the given specs, keyed by spec name.

        Matching is by full serialised spec content: an entry whose spec
        does not exactly match one of ``specs`` (the matrix changed since
        the journal was written) is ignored, so its cell re-runs.
        """
        from repro.scenarios.runner import ScenarioResult

        wanted = {_spec_key(spec.to_dict()): spec.name for spec in specs}
        completed: dict[str, ScenarioResult] = {}
        for entry in self.entries():
            spec_payload = entry.get("spec")
            if not isinstance(spec_payload, dict):
                continue
            name = wanted.get(_spec_key(spec_payload))
            if name is None:
                continue
            completed[name] = ScenarioResult.from_dict(entry)
        return completed

    def clear(self) -> None:
        """Delete the journal (a fresh, non-resumed run starts clean)."""
        self.path.unlink(missing_ok=True)


@dataclass
class ShardJournal:
    """Append-only within-cell checkpoint file, one record per trace shard.

    Two record kinds share the JSON-lines file:

    * ``{"kind": "shard", "cell": ..., "shard": ..., "payload": ...}`` — one
      (scheme, trace) shard of a cell finished; the payload is its
      serialised :class:`~repro.runtime.metrics.SessionResult`,
    * ``{"kind": "cell", "cell": ..., "payload": ...}`` — the whole cell
      finished; the payload is whatever summary the producer scores it with
      (the fault search stores the candidate spec and its score).

    Keys are opaque strings chosen by the producer; the fault search uses
    the candidate's canonical serialised spec (:func:`_spec_key`) as the
    cell key so stale journals invalidate by content exactly like
    :class:`MatrixJournal`.
    """

    path: Path

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    # -- writing ----------------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append_shard(self, cell: str, shard: str, payload: dict) -> None:
        """Durably record one completed (scheme, trace) shard of a cell."""
        self._append({"kind": "shard", "cell": cell, "shard": shard, "payload": payload})

    def append_cell(self, cell: str, payload: dict) -> None:
        """Durably record a completed cell's summary."""
        self._append({"kind": "cell", "cell": cell, "payload": payload})

    # -- reading ----------------------------------------------------------------

    def _scan(self) -> tuple[list[dict], int]:
        """Parsed records plus the byte offset where the valid prefix ends.

        Delegates to :func:`_scan_jsonl` — the same newline-strict scan
        :class:`MatrixJournal` uses.
        """
        return _scan_jsonl(self.path)

    @staticmethod
    def _fold(records: list[dict]) -> tuple[dict[str, dict], dict[str, dict[str, dict]]]:
        cells: dict[str, dict] = {}
        shards: dict[str, dict[str, dict]] = {}
        for record in records:
            kind = record.get("kind")
            cell = record.get("cell")
            payload = record.get("payload")
            if not isinstance(cell, str) or not isinstance(payload, dict):
                continue
            if kind == "cell":
                cells[cell] = payload
            elif kind == "shard" and isinstance(record.get("shard"), str):
                shards.setdefault(cell, {})[record["shard"]] = payload
        return cells, shards

    def load(self) -> tuple[dict[str, dict], dict[str, dict[str, dict]]]:
        """``(cells, shards)``: payloads keyed by cell, and by cell then shard."""
        records, _ = self._scan()
        return self._fold(records)

    def open_for_resume(self) -> tuple[dict[str, dict], dict[str, dict[str, dict]]]:
        """:meth:`load`, truncating any torn tail first.

        Appends made after this call land exactly where an uninterrupted
        run would have written them, which is what makes a resumed journal
        file byte-identical to an uninterrupted one.
        """
        records, valid_end = self._scan()
        if self.path.exists() and valid_end < self.path.stat().st_size:
            with open(self.path, "rb+") as handle:
                handle.truncate(valid_end)
        return self._fold(records)

    def clear(self) -> None:
        """Delete the journal (a fresh, non-resumed run starts clean)."""
        self.path.unlink(missing_ok=True)
