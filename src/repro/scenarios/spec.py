"""Declarative scenario specifications and the matrix expander.

A :class:`ScenarioSpec` names everything one evaluation cell needs — a
platform, a session regime (:mod:`repro.traces.presets`), an app mix, the
schemes to replay, and an optional PES tuning — without running anything.
A :class:`ScenarioMatrix` is the cross-product of those axes; expanding it
yields one spec per cell, ready to fan through
:meth:`repro.runtime.parallel.ParallelEvaluator.evaluate_matrix`.

Everything here is data: validation happens at construction time so a bad
matrix fails before any trace is generated, and specs round-trip through
plain dicts for the JSON artefacts under ``results/``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from itertools import product

from repro.core.pes import PesConfig
from repro.hardware.acmp import AcmpSystem
from repro.hardware.platforms import get_platform, list_platforms
from repro.runtime.simulator import KNOWN_SCHEMES
from repro.traces.presets import SessionRegime, get_regime
from repro.webapp.apps import SEEN_APPS, UNSEEN_APPS

#: Named application mixes usable as a scenario axis.  The small mixes keep
#: matrix cells cheap; ``seen``/``unseen``/``all`` reproduce the paper's
#: grouping for full-breadth runs.
APP_MIXES: dict[str, tuple[str, ...]] = {
    "core": ("cnn", "google", "ebay"),
    "news": ("cnn", "bbc", "nytimes"),
    "shopping": ("amazon", "ebay", "taobao"),
    "mixed": ("cnn", "google", "sina", "stackoverflow"),
    "seen": tuple(SEEN_APPS),
    "unseen": tuple(UNSEEN_APPS),
    "all": tuple(SEEN_APPS) + tuple(UNSEEN_APPS),
}


def resolve_app_mix(apps: str | tuple[str, ...]) -> tuple[str, ...]:
    """Turn a mix name or an explicit app tuple into the app tuple.

    Explicit tuples are validated against the benchmark app names so a
    typo fails at spec construction, not deep inside a run after the
    predictor has already been trained.
    """
    if isinstance(apps, str):
        try:
            return APP_MIXES[apps]
        except KeyError:
            raise KeyError(
                f"unknown app mix {apps!r}; available: {', '.join(sorted(APP_MIXES))}"
            ) from None
    if not apps:
        raise ValueError("a scenario needs at least one application")
    unknown = [app for app in apps if app not in APP_MIXES["all"]]
    if unknown:
        raise ValueError(f"unknown application {unknown[0]!r} in app mix")
    return tuple(apps)


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation cell: platform x regime x app mix x schemes (+ PES)."""

    name: str
    platform: str = "exynos5410"
    regime: str = "default"
    #: A mix name from :data:`APP_MIXES` or an explicit tuple of app names.
    apps: str | tuple[str, ...] = "core"
    schemes: tuple[str, ...] = ("Interactive", "EBS", "PES")
    traces_per_app: int = 1
    seed: int = 500_000
    pes: PesConfig | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.platform not in list_platforms():
            raise ValueError(
                f"unknown platform {self.platform!r}; available: {', '.join(list_platforms())}"
            )
        get_regime(self.regime)  # raises KeyError with the available names
        resolve_app_mix(self.apps)
        if not self.schemes:
            raise ValueError(f"scenario {self.name!r} has no schemes")
        unknown = [scheme for scheme in self.schemes if scheme not in KNOWN_SCHEMES]
        if unknown:
            raise ValueError(f"unknown scheme {unknown[0]!r} in scenario {self.name!r}")
        if self.traces_per_app < 1:
            raise ValueError("traces_per_app must be >= 1")

    # -- resolution -------------------------------------------------------------

    def resolved_apps(self) -> tuple[str, ...]:
        return resolve_app_mix(self.apps)

    def resolved_regime(self) -> SessionRegime:
        return get_regime(self.regime)

    def system(self) -> AcmpSystem:
        """The platform with the regime's hardware constraint applied."""
        return self.resolved_regime().constrain(get_platform(self.platform))

    @property
    def baseline(self) -> str:
        """The scheme every other scheme is normalised against (the first)."""
        return self.schemes[0]

    @property
    def n_sessions(self) -> int:
        return len(self.resolved_apps()) * self.traces_per_app

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "platform": self.platform,
            "regime": self.regime,
            "apps": self.apps if isinstance(self.apps, str) else list(self.apps),
            "resolved_apps": list(self.resolved_apps()),
            "schemes": list(self.schemes),
            "traces_per_app": self.traces_per_app,
            "seed": self.seed,
            "pes": asdict(self.pes) if self.pes is not None else None,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        apps = payload["apps"]
        pes = payload.get("pes")
        return cls(
            name=payload["name"],
            platform=payload.get("platform", "exynos5410"),
            regime=payload.get("regime", "default"),
            apps=apps if isinstance(apps, str) else tuple(apps),
            schemes=tuple(payload["schemes"]),
            traces_per_app=int(payload.get("traces_per_app", 1)),
            seed=int(payload.get("seed", 500_000)),
            pes=PesConfig(**pes) if pes is not None else None,
            description=payload.get("description", ""),
        )


@dataclass(frozen=True)
class ScenarioMatrix:
    """Cross-product of scenario axes, expanded into one spec per cell.

    Cell names are ``platform/regime/mix`` (with a ``pes<i>`` suffix when
    several PES configs are swept), so a matrix run's artefacts stay
    self-describing.
    """

    name: str
    platforms: tuple[str, ...] = ("exynos5410",)
    regimes: tuple[str, ...] = ("default",)
    app_mixes: tuple[str, ...] = ("core",)
    schemes: tuple[str, ...] = ("Interactive", "EBS", "PES")
    pes_configs: tuple[PesConfig | None, ...] = (None,)
    traces_per_app: int = 1
    seed: int = 500_000
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a matrix needs a name")
        for axis_name, axis in (
            ("platforms", self.platforms),
            ("regimes", self.regimes),
            ("app_mixes", self.app_mixes),
            ("schemes", self.schemes),
            ("pes_configs", self.pes_configs),
        ):
            if not axis:
                raise ValueError(f"matrix {self.name!r} has an empty {axis_name} axis")

    @property
    def n_cells(self) -> int:
        return (
            len(self.platforms)
            * len(self.regimes)
            * len(self.app_mixes)
            * len(self.pes_configs)
        )

    def expand(self) -> list[ScenarioSpec]:
        """One validated :class:`ScenarioSpec` per cell, deterministic order."""
        specs: list[ScenarioSpec] = []
        for platform, regime, mix, (pes_index, pes) in product(
            self.platforms,
            self.regimes,
            self.app_mixes,
            enumerate(self.pes_configs),
        ):
            cell = f"{platform}/{regime}/{mix}"
            if len(self.pes_configs) > 1:
                cell += f"/pes{pes_index}"
            specs.append(
                ScenarioSpec(
                    name=cell,
                    platform=platform,
                    regime=regime,
                    apps=mix,
                    schemes=self.schemes,
                    traces_per_app=self.traces_per_app,
                    seed=self.seed,
                    pes=pes,
                    description=self.description,
                )
            )
        return specs
