"""Declarative scenario specifications and the matrix expander.

A :class:`ScenarioSpec` names everything one evaluation cell needs — a
platform (optionally with parameter overrides: core counts, little-cluster
``perf_scale``, a thermal throttling curve), a session regime
(:mod:`repro.traces.presets`), an app mix, the schemes to replay, and an
optional PES tuning — without running anything.  A :class:`ScenarioMatrix`
is the cross-product of those axes (the platform axis may be a
:class:`~repro.scenarios.sweep.PlatformSweep`); expanding it yields one
spec per cell, ready to fan through
:meth:`repro.runtime.parallel.ParallelEvaluator.evaluate_matrix`.

Everything here is data: validation happens at construction time so a bad
matrix fails before any trace is generated, and specs round-trip through
plain dicts for the JSON artefacts under ``results/``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from itertools import product

from repro.core.pes import PesConfig
from repro.faults import FaultSpec
from repro.hardware.acmp import AcmpSystem
from repro.runtime.simulator import KNOWN_SCHEMES
from repro.scenarios.sweep import PlatformSweep, PlatformVariant
from repro.traces.presets import SessionRegime, get_regime
from repro.webapp.apps import SEEN_APPS, UNSEEN_APPS

#: Named application mixes usable as a scenario axis.  The small mixes keep
#: matrix cells cheap; ``seen``/``unseen``/``all`` reproduce the paper's
#: grouping for full-breadth runs.
APP_MIXES: dict[str, tuple[str, ...]] = {
    "core": ("cnn", "google", "ebay"),
    "news": ("cnn", "bbc", "nytimes"),
    "shopping": ("amazon", "ebay", "taobao"),
    "mixed": ("cnn", "google", "sina", "stackoverflow"),
    "seen": tuple(SEEN_APPS),
    "unseen": tuple(UNSEEN_APPS),
    "all": tuple(SEEN_APPS) + tuple(UNSEEN_APPS),
}


def resolve_app_mix(apps: str | tuple[str, ...]) -> tuple[str, ...]:
    """Turn a mix name or an explicit app tuple into the app tuple.

    Explicit tuples are validated against the benchmark app names so a
    typo fails at spec construction, not deep inside a run after the
    predictor has already been trained.
    """
    if isinstance(apps, str):
        try:
            return APP_MIXES[apps]
        except KeyError:
            raise KeyError(
                f"unknown app mix {apps!r}; available: {', '.join(sorted(APP_MIXES))}"
            ) from None
    if not apps:
        raise ValueError("a scenario needs at least one application")
    unknown = [app for app in apps if app not in APP_MIXES["all"]]
    if unknown:
        raise ValueError(f"unknown application {unknown[0]!r} in app mix")
    return tuple(apps)


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation cell: platform x regime x app mix x schemes (+ PES).

    The platform axis is parameterisable: ``big_cores`` / ``little_cores``
    / ``perf_scale`` derive a variant of the named platform
    (:func:`repro.hardware.platforms.derive_platform`) and ``thermal``
    names a throttling curve (:mod:`repro.hardware.thermal`) applied on
    top of the regime's constraint.  All four default to ``None`` — the
    unmodified named platform — so pre-sweep specs and artefacts are
    unchanged.
    """

    name: str
    platform: str = "exynos5410"
    regime: str = "default"
    #: A mix name from :data:`APP_MIXES` or an explicit tuple of app names.
    apps: str | tuple[str, ...] = "core"
    schemes: tuple[str, ...] = ("Interactive", "EBS", "PES")
    traces_per_app: int = 1
    seed: int = 500_000
    pes: PesConfig | None = None
    #: Platform-parameter overrides (see :class:`~repro.scenarios.sweep.PlatformVariant`).
    big_cores: int | None = None
    little_cores: int | None = None
    perf_scale: float | None = None
    thermal: str | None = None
    #: How the ``thermal`` curve is applied.  ``"static"`` collapses it to
    #: one pre-throttled platform per scenario (the regime's session length
    #: as heat-up dwell); ``"dynamic"`` threads a live thermal state through
    #: the engines instead, throttling per event as the package heats and
    #: cools.  Without a ``thermal`` curve both modes are identical.
    thermal_mode: str = "static"
    #: Seeded fault condition injected into every session of the cell
    #: (:mod:`repro.faults`).  ``None`` — and any zero-rate spec — is
    #: bit-identical to the fault-free path.
    faults: FaultSpec | None = None
    #: Ambient temperature override (°C) for the ``thermal`` curve — the
    #: fleet layer's per-device environment axis (a phone in a pocket vs on
    #: a desk).  ``None`` keeps the curve's own ambient; setting it without
    #: a ``thermal`` curve is rejected because there is nothing to heat.
    ambient_c: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.thermal_mode not in ("static", "dynamic"):
            raise ValueError(
                f"scenario {self.name!r} thermal_mode must be 'static' or 'dynamic', "
                f"got {self.thermal_mode!r}"
            )
        # Building the variant validates platform name, core counts,
        # perf_scale range, and the thermal-model name in one place.
        self.platform_variant()
        get_regime(self.regime)  # raises KeyError with the available names
        resolve_app_mix(self.apps)
        if not self.schemes:
            raise ValueError(f"scenario {self.name!r} has no schemes")
        unknown = [scheme for scheme in self.schemes if scheme not in KNOWN_SCHEMES]
        if unknown:
            raise ValueError(f"unknown scheme {unknown[0]!r} in scenario {self.name!r}")
        if len(set(self.schemes)) != len(self.schemes):
            # A duplicated scheme would replay twice and silently double
            # every streamed aggregate (sessions, energy) for that scheme.
            raise ValueError(f"scenario {self.name!r} lists a scheme twice")
        if self.traces_per_app < 1:
            raise ValueError("traces_per_app must be >= 1")
        if self.ambient_c is not None and self.thermal is None:
            raise ValueError(
                f"scenario {self.name!r} sets ambient_c without a thermal curve"
            )

    # -- resolution -------------------------------------------------------------

    def resolved_apps(self) -> tuple[str, ...]:
        return resolve_app_mix(self.apps)

    def resolved_regime(self) -> SessionRegime:
        return get_regime(self.regime)

    def platform_variant(self) -> PlatformVariant:
        """The spec's platform overrides as a sweep variant."""
        return PlatformVariant(
            platform=self.platform,
            big_cores=self.big_cores,
            little_cores=self.little_cores,
            perf_scale=self.perf_scale,
            thermal=self.thermal,
        )

    def system(self) -> AcmpSystem:
        """The derived platform with regime and thermal constraints applied.

        Order: parameter overrides first, then the regime's frequency cap,
        then — in ``static`` mode only — the thermal throttle (hottest
        constraint wins; successive caps compose as their minimum and are
        idempotent), with the regime's target session length as the heat-up
        dwell.  In ``dynamic`` mode the thermal curve is deliberately *not*
        baked into the platform: the engines apply it live, per event
        (:func:`dynamic_thermal_model`), so the returned system is only
        regime-constrained.
        """
        variant = self.platform_variant()
        regime = self.resolved_regime()
        system = regime.constrain(variant.derived_system())
        model = self._thermal_model()
        if model is not None and self.thermal_mode == "static":
            system = model.constrain(
                system, dwell_s=regime.session.target_duration_ms / 1000.0
            )
        return system

    def _thermal_model(self):
        """The named curve with this spec's ambient override applied."""
        model = self.platform_variant().thermal_model()
        if model is not None and self.ambient_c is not None:
            model = replace(model, ambient_c=self.ambient_c)
        return model

    def dynamic_thermal_model(self):
        """The live thermal model for the engines, ``None`` unless dynamic.

        Returns the named :class:`~repro.hardware.thermal.ThermalModel` when
        ``thermal_mode == "dynamic"`` and a curve is set — the object
        :class:`~repro.runtime.simulator.SimulationSetup` (and through it
        every engine) receives.  Static mode returns ``None`` because the
        curve is already collapsed into :meth:`system`.
        """
        if self.thermal_mode != "dynamic":
            return None
        return self._thermal_model()

    @property
    def baseline(self) -> str:
        """The scheme every other scheme is normalised against (the first)."""
        return self.schemes[0]

    @property
    def n_sessions(self) -> int:
        return len(self.resolved_apps()) * self.traces_per_app

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "platform": self.platform,
            "regime": self.regime,
            "apps": self.apps if isinstance(self.apps, str) else list(self.apps),
            "resolved_apps": list(self.resolved_apps()),
            "schemes": list(self.schemes),
            "traces_per_app": self.traces_per_app,
            "seed": self.seed,
            "pes": asdict(self.pes) if self.pes is not None else None,
            "big_cores": self.big_cores,
            "little_cores": self.little_cores,
            "perf_scale": self.perf_scale,
            "thermal": self.thermal,
        }
        if self.thermal_mode != "static":
            # Emitted only when non-default so pre-thermal artefacts and the
            # committed golden fixture stay byte-identical; from_dict
            # defaults a missing key back to "static".
            payload["thermal_mode"] = self.thermal_mode
        if self.faults is not None:
            # Same conditional emission: fault-free artefacts (including the
            # golden fixture) keep their exact byte shape.
            payload["faults"] = self.faults.to_dict()
        if self.ambient_c is not None:
            # Conditional for the same reason: pre-fleet artefacts keep
            # their exact byte shape; from_dict defaults a missing key.
            payload["ambient_c"] = self.ambient_c
        payload["description"] = self.description
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        apps = payload["apps"]
        pes = payload.get("pes")
        faults = payload.get("faults")
        return cls(
            name=payload["name"],
            platform=payload.get("platform", "exynos5410"),
            regime=payload.get("regime", "default"),
            apps=apps if isinstance(apps, str) else tuple(apps),
            schemes=tuple(payload["schemes"]),
            traces_per_app=int(payload.get("traces_per_app", 1)),
            seed=int(payload.get("seed", 500_000)),
            pes=PesConfig(**pes) if pes is not None else None,
            big_cores=payload.get("big_cores"),
            little_cores=payload.get("little_cores"),
            perf_scale=payload.get("perf_scale"),
            thermal=payload.get("thermal"),
            thermal_mode=payload.get("thermal_mode", "static"),
            faults=FaultSpec.from_dict(faults) if faults is not None else None,
            ambient_c=payload.get("ambient_c"),
            description=payload.get("description", ""),
        )


@dataclass(frozen=True)
class ScenarioMatrix:
    """Cross-product of scenario axes, expanded into one spec per cell.

    Cell names are ``platform/regime/mix`` (with a ``pes<i>`` suffix when
    several PES configs are swept), so a matrix run's artefacts stay
    self-describing.

    The platform axis comes in two strengths: ``platforms`` names fixed
    SoCs, while ``platform_sweep`` cross-products platform *parameters*
    (core counts, little-cluster ``perf_scale``, thermal curves) into
    derived variants.  When a sweep is given it replaces the ``platforms``
    axis and cell names lead with the variant label
    (``exynos5410+b2+th.passive_phone/default/core``) — every variant gets
    its own cell key and therefore its own worker-local simulator in
    :meth:`~repro.runtime.parallel.ParallelEvaluator.evaluate_matrix`.
    """

    name: str
    #: ``None`` (the default) resolves to the primary platform unless a
    #: ``platform_sweep`` supplies the axis instead — a ``None`` sentinel
    #: rather than a default tuple, so *explicitly* passing ``platforms``
    #: together with a sweep is always detected as a conflict.
    platforms: tuple[str, ...] | None = None
    regimes: tuple[str, ...] = ("default",)
    app_mixes: tuple[str, ...] = ("core",)
    schemes: tuple[str, ...] = ("Interactive", "EBS", "PES")
    pes_configs: tuple[PesConfig | None, ...] = (None,)
    #: Fault-condition axis: each entry is cross-producted like any other
    #: axis (``None`` = the fault-free cell).  Cell names gain a
    #: ``/<fault name>`` (or ``/nofault``) suffix when more than one entry
    #: is swept.
    fault_specs: tuple[FaultSpec | None, ...] = (None,)
    platform_sweep: PlatformSweep | None = None
    traces_per_app: int = 1
    seed: int = 500_000
    #: Applied to every expanded spec; see :attr:`ScenarioSpec.thermal_mode`.
    thermal_mode: str = "static"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a matrix needs a name")
        if self.thermal_mode not in ("static", "dynamic"):
            raise ValueError(
                f"matrix {self.name!r} thermal_mode must be 'static' or 'dynamic', "
                f"got {self.thermal_mode!r}"
            )
        for axis_name, axis in (
            ("regimes", self.regimes),
            ("app_mixes", self.app_mixes),
            ("schemes", self.schemes),
            ("pes_configs", self.pes_configs),
            ("fault_specs", self.fault_specs),
        ):
            if not axis:
                raise ValueError(f"matrix {self.name!r} has an empty {axis_name} axis")
            # A duplicated axis entry expands to colliding cell names (or a
            # twice-replayed scheme), corrupting aggregates downstream.
            if any(axis[i] in axis[:i] for i in range(1, len(axis))):
                raise ValueError(f"matrix {self.name!r} {axis_name} axis has duplicate entries")
        fault_names = [self._fault_label(fault) for fault in self.fault_specs]
        if len(set(fault_names)) != len(fault_names):
            # Fault cell names come from the spec names, so two distinct
            # specs sharing a name would still collide in cell keys.
            raise ValueError(f"matrix {self.name!r} fault_specs axis has duplicate names")
        if self.platforms is not None:
            if not self.platforms:
                raise ValueError(f"matrix {self.name!r} has an empty platforms axis")
            if len(set(self.platforms)) != len(self.platforms):
                raise ValueError(f"matrix {self.name!r} platforms axis has duplicate entries")
        if self.platforms is not None and self.platform_sweep is not None:
            raise ValueError(
                f"matrix {self.name!r} sets both platforms and platform_sweep; "
                "put the swept platforms inside the sweep"
            )

    def platform_variants(self) -> list[PlatformVariant]:
        """The platform axis as variants (plain platforms when not sweeping)."""
        if self.platform_sweep is not None:
            return self.platform_sweep.variants()
        platforms = self.platforms if self.platforms is not None else ("exynos5410",)
        return [PlatformVariant(platform=platform) for platform in platforms]

    @staticmethod
    def _fault_label(fault: FaultSpec | None) -> str:
        return fault.name if fault is not None else "nofault"

    @property
    def n_cells(self) -> int:
        return (
            len(self.platform_variants())
            * len(self.regimes)
            * len(self.app_mixes)
            * len(self.pes_configs)
            * len(self.fault_specs)
        )

    def expand(self) -> list[ScenarioSpec]:
        """One validated :class:`ScenarioSpec` per cell, deterministic order."""
        specs: list[ScenarioSpec] = []
        for variant, regime, mix, (pes_index, pes), fault in product(
            self.platform_variants(),
            self.regimes,
            self.app_mixes,
            enumerate(self.pes_configs),
            self.fault_specs,
        ):
            cell = f"{variant.label}/{regime}/{mix}"
            if len(self.pes_configs) > 1:
                cell += f"/pes{pes_index}"
            if len(self.fault_specs) > 1:
                cell += f"/{self._fault_label(fault)}"
            specs.append(
                ScenarioSpec(
                    name=cell,
                    platform=variant.platform,
                    regime=regime,
                    apps=mix,
                    schemes=self.schemes,
                    traces_per_app=self.traces_per_app,
                    seed=self.seed,
                    pes=pes,
                    big_cores=variant.big_cores,
                    little_cores=variant.little_cores,
                    perf_scale=variant.perf_scale,
                    thermal=variant.thermal,
                    thermal_mode=self.thermal_mode,
                    faults=fault,
                    description=self.description,
                )
            )
        return specs

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "platforms": list(self.platforms) if self.platforms is not None else None,
            "regimes": list(self.regimes),
            "app_mixes": list(self.app_mixes),
            "schemes": list(self.schemes),
            "pes_configs": [
                asdict(pes) if pes is not None else None for pes in self.pes_configs
            ],
            "platform_sweep": (
                self.platform_sweep.to_dict() if self.platform_sweep is not None else None
            ),
            "traces_per_app": self.traces_per_app,
            "seed": self.seed,
        }
        if self.thermal_mode != "static":
            # Same conditional emission as ScenarioSpec: pre-thermal payloads
            # keep their exact byte shape, from_dict defaults to "static".
            payload["thermal_mode"] = self.thermal_mode
        if self.fault_specs != (None,):
            payload["fault_specs"] = [
                fault.to_dict() if fault is not None else None
                for fault in self.fault_specs
            ]
        payload["description"] = self.description
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioMatrix":
        sweep = payload.get("platform_sweep")
        platforms = payload.get("platforms")
        return cls(
            name=payload["name"],
            platforms=tuple(platforms) if platforms is not None else None,
            regimes=tuple(payload.get("regimes", ("default",))),
            app_mixes=tuple(payload.get("app_mixes", ("core",))),
            schemes=tuple(payload.get("schemes", ("Interactive", "EBS", "PES"))),
            pes_configs=tuple(
                PesConfig(**pes) if pes is not None else None
                for pes in payload.get("pes_configs", (None,))
            ),
            fault_specs=tuple(
                FaultSpec.from_dict(fault) if fault is not None else None
                for fault in payload.get("fault_specs", (None,))
            ),
            platform_sweep=PlatformSweep.from_dict(sweep) if sweep is not None else None,
            traces_per_app=int(payload.get("traces_per_app", 1)),
            seed=int(payload.get("seed", 500_000)),
            thermal_mode=payload.get("thermal_mode", "static"),
            description=payload.get("description", ""),
        )
