"""Run scenario specs end-to-end and serialise their results.

:class:`ScenarioRunner` turns each :class:`~repro.scenarios.spec.ScenarioSpec`
into a :class:`~repro.runtime.parallel.MatrixSweep` — regime-shaped traces,
a platform setup with the regime's frequency cap applied — and fans every
(scenario x scheme x trace) job through one
:meth:`~repro.runtime.parallel.ParallelEvaluator.evaluate_matrix` pool with
streaming per-scenario aggregation.  Every replay is deterministic, so any
``jobs`` value produces bit-identical per-scenario aggregates.

Results serialise to a plain-JSON schema (``results/SCENARIOS_*.json``)
that the ``scenarios compare`` subcommand and external tooling can consume
without importing this package's classes.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.core.predictor.sequence_learner import EventSequenceLearner
from repro.core.predictor.training import PredictorTrainer
from repro.runtime.metrics import (
    AggregateMetrics,
    FaultAggregate,
    SessionResult,
    ThermalAggregate,
)
from repro.runtime.parallel import MatrixSweep, ParallelEvaluator, SchemeAggregates
from repro.runtime.simulator import SimulationSetup
from repro.scenarios.checkpoint import ArtefactError, MatrixJournal, ShardJournal, _spec_key
from repro.scenarios.spec import ScenarioSpec
from repro.traces.generator import TraceGenerator
from repro.utils import write_json_atomic
from repro.webapp.apps import AppCatalog, SEEN_APPS


@dataclass
class ScenarioResult:
    """Aggregated outcome of one scenario across its schemes."""

    spec: ScenarioSpec
    aggregates: dict[str, SchemeAggregates]

    def overall(self, scheme: str) -> AggregateMetrics:
        return self.aggregates[scheme].overall

    def normalised_energy(self) -> dict[str, float | None]:
        """Total energy of each scheme relative to the scenario's baseline.

        ``None`` marks schemes that cannot be normalised because the
        baseline aggregated to non-positive energy (e.g. a degenerate
        zero-event regime) — the table renderers print those as ``n/a``
        instead of dividing by zero.
        """
        base = self.aggregates[self.spec.baseline].overall.total_energy_mj
        if base <= 0:
            return {scheme: None for scheme in self.aggregates}
        return {
            scheme: aggregates.overall.total_energy_mj / base
            for scheme, aggregates in self.aggregates.items()
        }

    def qos_violation(self) -> dict[str, float]:
        return {
            scheme: aggregates.overall.qos_violation_rate
            for scheme, aggregates in self.aggregates.items()
        }

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        schemes: dict[str, dict] = {}
        for scheme, aggregates in self.aggregates.items():
            cell = {
                "overall": asdict(aggregates.overall),
                "per_app": {
                    app: asdict(metrics) for app, metrics in aggregates.per_app.items()
                },
            }
            if aggregates.thermal is not None:
                # Only dynamic-thermal cells carry the block, so static and
                # thermal-free artefacts (including the committed golden
                # fixture) keep their exact byte shape.
                cell["thermal"] = aggregates.thermal.to_dict()
            if aggregates.faults is not None:
                # Same convention: only fault-injected cells carry the block.
                cell["faults"] = aggregates.faults.to_dict()
            schemes[scheme] = cell
        return {
            "spec": self.spec.to_dict(),
            "schemes": schemes,
            "normalised_energy": self.normalised_energy(),
            "qos_violation": self.qos_violation(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioResult":
        aggregates = {
            scheme: SchemeAggregates(
                overall=AggregateMetrics(**cell["overall"]),
                per_app={
                    app: AggregateMetrics(**metrics)
                    for app, metrics in cell["per_app"].items()
                },
                thermal=(
                    ThermalAggregate.from_dict(cell["thermal"])
                    if cell.get("thermal") is not None
                    else None
                ),
                faults=(
                    FaultAggregate.from_dict(cell["faults"])
                    if cell.get("faults") is not None
                    else None
                ),
            )
            for scheme, cell in payload["schemes"].items()
        }
        return cls(spec=ScenarioSpec.from_dict(payload["spec"]), aggregates=aggregates)


@dataclass
class ScenarioRunner:
    """Expands scenario specs into matrix sweeps and runs them."""

    catalog: AppCatalog = field(default_factory=AppCatalog)
    jobs: int = 1
    chunk_size: int | None = None
    #: Pool-wide stall watchdog forwarded to
    #: :class:`~repro.runtime.parallel.ParallelEvaluator` — seconds without
    #: any worker finishing a job before the pool is torn down and the
    #: unfinished jobs re-run serially in the parent.
    job_timeout_s: float | None = None
    #: Traces per seen app used when a PES scenario needs a learner and the
    #: caller did not supply one.
    train_traces_per_app: int = 4
    train_seed: int = 0
    #: Minimum sessions before a scenario's trace generation gets its own
    #: worker pool; below this, pool start-up (a full interpreter spawn on
    #: non-Linux platforms) costs more than generating the traces serially.
    parallel_generation_threshold: int = 16
    #: When ``True``, specs that resolve to the same hardware configuration
    #: (platform variant, regime cap, thermal curve + ambient + mode, fault
    #: spec, PES tuning) share one :class:`SimulationSetup` object and a
    #: ``setup_key`` tag, so
    #: :meth:`~repro.runtime.parallel.ParallelEvaluator.evaluate_matrix`
    #: workers build one simulator per distinct configuration instead of
    #: one per spec.  The fleet layer turns this on — a 200-device
    #: population typically draws from a dozen configurations.
    share_setups: bool = False
    #: Trained learners keyed by the fields that define them — see
    #: :meth:`train_learner`.
    _trained: dict[tuple[int, int], EventSequenceLearner] = field(
        default_factory=dict, init=False, repr=False
    )
    _setup_cache: dict[str, tuple[SimulationSetup, object]] = field(
        default_factory=dict, init=False, repr=False
    )

    # -- building blocks --------------------------------------------------------

    def build_sweep(self, spec: ScenarioSpec) -> MatrixSweep:
        """Generate a scenario's traces and wire up its platform setup."""
        regime = spec.resolved_regime()
        generator = TraceGenerator(
            catalog=self.catalog,
            session=regime.session,
            workload_params=regime.workload_params,
        )
        # generate_many_parallel always derives per-trace seeds through
        # substream_seeds, so the traces are identical for any jobs value
        # (and to generate_many(..., independent_streams=True)); jobs=1
        # falls through to the plain serial loop.
        gen_jobs = 1 if spec.n_sessions < self.parallel_generation_threshold else self.jobs
        traces = generator.generate_many_parallel(
            list(spec.resolved_apps()),
            spec.traces_per_app,
            base_seed=spec.seed,
            jobs=gen_jobs,
        )
        setup_key: str | None = None
        pes_config = spec.pes
        if self.share_setups:
            # Everything that feeds the SimulationSetup (plus the PES
            # tuning, which rides along in the sweep), canonically
            # serialised: two specs with equal keys get the *same* setup
            # and pes objects (evaluate_matrix validates that identity).
            setup_key = json.dumps(
                {
                    "variant": spec.platform_variant().label,
                    "regime": spec.regime,
                    "thermal_mode": spec.thermal_mode,
                    "ambient_c": spec.ambient_c,
                    "faults": spec.faults.to_dict() if spec.faults is not None else None,
                    "pes": asdict(spec.pes) if spec.pes is not None else None,
                },
                sort_keys=True,
            )
            cached = self._setup_cache.get(setup_key)
            if cached is None:
                cached = (
                    SimulationSetup(
                        system=spec.system(),
                        thermal=spec.dynamic_thermal_model(),
                        faults=spec.faults,
                    ),
                    spec.pes,
                )
                self._setup_cache[setup_key] = cached
            setup, pes_config = cached
        else:
            setup = SimulationSetup(
                system=spec.system(),
                thermal=spec.dynamic_thermal_model(),
                faults=spec.faults,
            )
        return MatrixSweep(
            key=spec.name,
            setup=setup,
            traces=tuple(traces),
            schemes=spec.schemes,
            pes_config=pes_config,
            setup_key=setup_key,
        )

    def train_learner(self) -> EventSequenceLearner:
        """Train (once per training configuration) the default PES predictor.

        The training inputs are ``train_traces_per_app`` and ``train_seed``,
        so the cache is keyed on exactly that pair: mutating either field
        after a first :meth:`run` trains a fresh learner instead of silently
        returning the stale one, while repeated runs with unchanged fields
        keep hitting the cached learner (and, downstream, the per-app warm
        PES schedulers that compare learners by value).
        """
        key = (self.train_traces_per_app, self.train_seed)
        learner = self._trained.get(key)
        if learner is None:
            generator = TraceGenerator(catalog=self.catalog)
            training = generator.generate_many(
                list(SEEN_APPS), self.train_traces_per_app, base_seed=self.train_seed
            )
            learner = PredictorTrainer(catalog=self.catalog).train(training).learner
            self._trained[key] = learner
        return learner

    # -- execution --------------------------------------------------------------

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        learner: EventSequenceLearner | None = None,
        journal: MatrixJournal | None = None,
        shards: ShardJournal | None = None,
        resume: bool = False,
        on_session: "Callable[[str, str, int, SessionResult], None] | None" = None,
    ) -> list[ScenarioResult]:
        """Run every scenario, returning one result per spec in spec order.

        With a ``journal``, every finished scenario is checkpointed the
        moment its last session folds (crash-tolerance for long matrix
        runs).  ``resume=True`` additionally skips scenarios already
        journaled under an exactly-matching spec; because every replay is
        deterministic and result serialisation round-trips losslessly, a
        resumed run's results — and any artefact written from them — are
        byte-identical to an uninterrupted run's.  Without ``resume`` an
        existing journal is cleared first, so a fresh run never mixes in
        stale cells.

        With a ``shards`` journal, checkpointing goes one level finer:
        every (scheme, trace) session is journaled the moment it folds, so
        ``resume=True`` skips re-simulating the sessions of a cell the
        crash interrupted *mid-cell* — their results are restored from the
        journal and folded at their original position, keeping aggregates,
        hook order, the final artefact, *and the journal file itself*
        byte-identical to an uninterrupted run.  Cells are matched by
        serialised spec content, so editing the matrix invalidates exactly
        the cells that changed.

        ``on_session`` is called as ``(spec name, scheme, trace index,
        result)`` for every session of every non-skipped spec, in
        deterministic fold order — restored and freshly-simulated sessions
        alike, which is what lets the fleet layer rebuild per-device
        aggregates across a resume.
        """
        spec_list = list(specs)
        if not spec_list:
            return []
        completed: dict[str, ScenarioResult] = {}
        shard_map: dict[str, dict[str, dict]] = {}
        if shards is not None:
            if resume:
                _, shard_map = shards.open_for_resume()
            else:
                shards.clear()
        if journal is not None:
            if resume:
                # A resume that resumes nothing is usually a mistake — a
                # mistyped --out, a journal cleared by a completed run, or a
                # matrix edited since the crash.  The run itself is still
                # correct (every cell replays), so warn rather than fail.
                if not journal.path.exists():
                    warnings.warn(
                        f"--resume requested but no journal exists at "
                        f"{journal.path}; running every scenario from scratch",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                else:
                    # Truncate any torn tail *before* reading completed
                    # cells, so the appends this resumed run makes can
                    # never concatenate onto a half-written last line.
                    journal.open_for_resume()
                    completed = journal.completed_results(spec_list)
                    if not completed:
                        warnings.warn(
                            f"--resume requested but the journal at "
                            f"{journal.path} matches none of the "
                            f"{len(spec_list)} scenario spec(s) — the matrix "
                            f"changed since it was written; running every "
                            f"scenario from scratch",
                            RuntimeWarning,
                            stacklevel=2,
                        )
            else:
                journal.clear()
        todo = [spec for spec in spec_list if spec.name not in completed]
        fresh: dict[str, ScenarioResult] = {}
        if todo:
            if learner is None and any("PES" in spec.schemes for spec in todo):
                learner = self.train_learner()
            sweeps = [self.build_sweep(spec) for spec in todo]
            evaluator = ParallelEvaluator(
                catalog=self.catalog,
                jobs=self.jobs,
                chunk_size=self.chunk_size,
                job_timeout_s=self.job_timeout_s,
            )
            by_key = {spec.name: spec for spec in todo}
            cell_keys = {spec.name: _spec_key(spec.to_dict()) for spec in todo}
            precomputed: dict[tuple[str, str, int], SessionResult] = {}
            for spec in todo:
                for shard_key, payload in shard_map.get(cell_keys[spec.name], {}).items():
                    scheme, _, trace_index = shard_key.rpartition("/")
                    if not scheme or not trace_index.isdigit():
                        continue
                    precomputed[(spec.name, scheme, int(trace_index))] = (
                        SessionResult.from_dict(payload)
                    )

            def checkpoint(
                sweep: MatrixSweep, aggregates: dict[str, SchemeAggregates]
            ) -> None:
                result = ScenarioResult(spec=by_key[sweep.key], aggregates=aggregates)
                fresh[sweep.key] = result
                if journal is not None:
                    journal.append(result)

            session_counters: dict[tuple[str, str], int] = {}

            def record_session(
                key: str, scheme: str, trace: object, result: SessionResult
            ) -> None:
                # Fold order is deterministic per (key, scheme), so a plain
                # counter recovers the trace index without widening the
                # evaluate_matrix hook signature.
                trace_index = session_counters.get((key, scheme), 0)
                session_counters[(key, scheme)] = trace_index + 1
                if shards is not None and (key, scheme, trace_index) not in precomputed:
                    shards.append_shard(
                        cell_keys[key], f"{scheme}/{trace_index}", result.to_dict()
                    )
                if on_session is not None:
                    on_session(key, scheme, trace_index, result)

            on_job = (
                record_session if (shards is not None or on_session is not None) else None
            )
            evaluator.evaluate_matrix(
                sweeps,
                learner=learner,
                on_sweep_complete=checkpoint,
                on_job_complete=on_job,
                precomputed=precomputed or None,
            )
        return [
            completed[spec.name] if spec.name in completed else fresh[spec.name]
            for spec in spec_list
        ]


def results_to_rows(
    results: Sequence[ScenarioResult],
) -> dict[str, dict[str, AggregateMetrics]]:
    """Scenario -> scheme -> overall metrics, the shape the
    :mod:`repro.analysis.reporting` scenario tables consume."""
    return {
        result.spec.name: {
            scheme: aggregates.overall for scheme, aggregates in result.aggregates.items()
        }
        for result in results
    }


# -- result artefacts ------------------------------------------------------------------


def results_to_payload(
    results: Sequence[ScenarioResult], *, matrix: str | None = None
) -> dict:
    """The JSON payload of a scenario run (schema of ``SCENARIOS_*.json``).

    The payload is a pure function of the results: the worker count used to
    produce them is deliberately *not* recordable.  An always-``null``
    ``jobs`` key is kept for schema compatibility with older artefacts —
    embedding the real value made ``scenarios run`` write different files
    for ``--jobs 1`` and ``--jobs 4`` even though the results were
    bit-identical, breaking byte-level artefact diffing.
    """
    return {
        "matrix": matrix,
        "jobs": None,
        "n_scenarios": len(results),
        "scenarios": [result.to_dict() for result in results],
    }


def write_results(
    results: Sequence[ScenarioResult],
    path: str | Path,
    *,
    matrix: str | None = None,
) -> Path:
    """Atomically write a ``SCENARIOS_*.json`` artefact.

    Routed through :func:`repro.utils.write_json_atomic` (temp sibling,
    fsync, :func:`os.replace`), so a crash mid-write can never leave a
    truncated artefact at ``path`` — readers see either the old complete
    file or the new complete file.
    """
    payload = results_to_payload(results, matrix=matrix)
    return write_json_atomic(payload, path)


def load_results(path: str | Path) -> tuple[dict, list[ScenarioResult]]:
    """Read a ``SCENARIOS_*.json`` artefact back into result objects.

    Raises :class:`~repro.scenarios.checkpoint.ArtefactError` when the file
    holds corrupt or truncated JSON, naming the file and the parse position
    instead of surfacing a bare decode error.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtefactError(
            f"results artefact {path} is corrupt or truncated: {exc.msg} at "
            f"line {exc.lineno} column {exc.colno} (char {exc.pos})"
        ) from exc
    results = [ScenarioResult.from_dict(entry) for entry in payload["scenarios"]]
    return payload, results
