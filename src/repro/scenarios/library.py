"""Built-in scenario library and named matrices.

Two entry points:

* :data:`BUILTIN_SCENARIOS` — curated single scenarios, one per session
  regime plus a cross-platform check, runnable by name
  (``python -m repro scenarios run --scenario flash_crowd``).
* :data:`MATRICES` — named :class:`~repro.scenarios.spec.ScenarioMatrix`
  cross-products (``python -m repro scenarios run --matrix default``).

The ``default`` matrix is sized to finish in minutes on one core while
still covering both platforms and three qualitatively different regimes
(6 scenarios x 3 schemes); ``full`` sweeps every regime on both platforms
against seen *and* unseen app mixes for overnight breadth runs.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioMatrix, ScenarioSpec


def _builtin_scenarios() -> dict[str, ScenarioSpec]:
    specs = [
        ScenarioSpec(
            name="baseline_seen",
            regime="default",
            apps="core",
            description="the paper's default sessions on the primary platform",
        ),
        ScenarioSpec(
            name="flash_crowd",
            regime="flash_crowd",
            apps="news",
            description="breaking-news burst: short think times, heavy taps",
        ),
        ScenarioSpec(
            name="background_tabs",
            regime="background_idle",
            apps="mixed",
            description="idle background tabs where idle energy dominates",
        ),
        ScenarioSpec(
            name="low_battery",
            regime="low_battery",
            apps="mixed",
            description="battery saver caps every cluster at 1.1 GHz",
        ),
        ScenarioSpec(
            name="marathon_day",
            regime="marathon",
            apps="mixed",
            description="long mixed multi-app browsing day",
        ),
        ScenarioSpec(
            name="tegra_baseline",
            platform="tegra_parker",
            regime="default",
            apps="core",
            description="default sessions on the TX2-class platform (Sec. 6.5)",
        ),
    ]
    return {spec.name: spec for spec in specs}


#: Curated single scenarios, keyed by name.
BUILTIN_SCENARIOS: dict[str, ScenarioSpec] = _builtin_scenarios()


def _builtin_matrices() -> dict[str, ScenarioMatrix]:
    return {
        "default": ScenarioMatrix(
            name="default",
            platforms=("exynos5410", "tegra_parker"),
            regimes=("default", "flash_crowd", "low_battery"),
            app_mixes=("core",),
            schemes=("Interactive", "EBS", "PES"),
            traces_per_app=1,
            description="both platforms x three regimes on the core app mix",
        ),
        "regimes": ScenarioMatrix(
            name="regimes",
            platforms=("exynos5410",),
            regimes=("default", "flash_crowd", "background_idle", "low_battery", "marathon"),
            app_mixes=("core",),
            schemes=("Interactive", "EBS", "PES"),
            traces_per_app=1,
            description="every session regime on the primary platform",
        ),
        "reactive": ScenarioMatrix(
            name="reactive",
            platforms=("exynos5410", "tegra_parker"),
            regimes=("default", "flash_crowd", "background_idle", "low_battery", "marathon"),
            app_mixes=("core",),
            schemes=("Interactive", "Ondemand", "EBS"),
            traces_per_app=1,
            description="training-free breadth sweep of the reactive baselines",
        ),
        "full": ScenarioMatrix(
            name="full",
            platforms=("exynos5410", "tegra_parker"),
            regimes=("default", "flash_crowd", "background_idle", "low_battery", "marathon"),
            app_mixes=("seen", "unseen"),
            schemes=("Interactive", "Ondemand", "EBS", "PES"),
            traces_per_app=2,
            description="the overnight breadth run: 20 scenarios, every scheme",
        ),
    }


#: Named matrices, keyed by name.
MATRICES: dict[str, ScenarioMatrix] = _builtin_matrices()


def list_scenarios() -> list[str]:
    return sorted(BUILTIN_SCENARIOS)


def list_matrices() -> list[str]:
    return sorted(MATRICES)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return BUILTIN_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(list_scenarios())}"
        ) from None


def get_matrix(name: str) -> ScenarioMatrix:
    try:
        return MATRICES[name]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; available: {', '.join(list_matrices())}"
        ) from None
