"""Built-in scenario library and named matrices.

Two entry points:

* :data:`BUILTIN_SCENARIOS` — curated single scenarios, one per session
  regime plus a cross-platform check, runnable by name
  (``python -m repro scenarios run --scenario flash_crowd``).
* :data:`MATRICES` — named :class:`~repro.scenarios.spec.ScenarioMatrix`
  cross-products (``python -m repro scenarios run --matrix default``).

The ``default`` matrix is sized to finish in minutes on one core while
still covering both platforms and three qualitatively different regimes
(6 scenarios x 3 schemes); ``full`` sweeps every regime on both platforms
against seen *and* unseen app mixes for overnight breadth runs.

``platform_sweep`` and ``thermal`` sweep platform *parameters* instead of
named SoCs: core counts, little-cluster ``perf_scale``, and thermal
throttling curves (:mod:`repro.hardware.thermal`) expand into derived
systems via :class:`~repro.scenarios.sweep.PlatformSweep` — the same axes
``python -m repro scenarios sweep`` exposes ad hoc.
"""

from __future__ import annotations

from repro.faults import get_fault_preset
from repro.scenarios.spec import ScenarioMatrix, ScenarioSpec
from repro.scenarios.sweep import PlatformSweep


def _builtin_scenarios() -> dict[str, ScenarioSpec]:
    specs = [
        ScenarioSpec(
            name="baseline_seen",
            regime="default",
            apps="core",
            description="the paper's default sessions on the primary platform",
        ),
        ScenarioSpec(
            name="flash_crowd",
            regime="flash_crowd",
            apps="news",
            description="breaking-news burst: short think times, heavy taps",
        ),
        ScenarioSpec(
            name="background_tabs",
            regime="background_idle",
            apps="mixed",
            description="idle background tabs where idle energy dominates",
        ),
        ScenarioSpec(
            name="low_battery",
            regime="low_battery",
            apps="mixed",
            description="battery saver caps every cluster at 1.1 GHz",
        ),
        ScenarioSpec(
            name="marathon_day",
            regime="marathon",
            apps="mixed",
            description="long mixed multi-app browsing day",
        ),
        ScenarioSpec(
            name="tegra_baseline",
            platform="tegra_parker",
            regime="default",
            apps="core",
            description="default sessions on the TX2-class platform (Sec. 6.5)",
        ),
        ScenarioSpec(
            name="network_limited",
            regime="network_limited",
            apps="news",
            description="congested link: network time dominates event latency",
        ),
        ScenarioSpec(
            name="fg_bg_switching",
            regime="fg_bg_switching",
            apps="mixed",
            description="foreground bursts between long background lulls",
        ),
        ScenarioSpec(
            name="hot_chassis",
            regime="marathon",
            apps="core",
            thermal="cramped_chassis",
            description="marathon sessions in a cramped chassis: deep thermal throttle",
        ),
        ScenarioSpec(
            name="hot_chassis_live",
            regime="flash_crowd",
            apps="core",
            thermal="cramped_chassis",
            thermal_mode="dynamic",
            description="flash-crowd bursts heat a cramped chassis mid-session: "
            "per-event throttling with live heat-up/cool-down",
        ),
    ]
    return {spec.name: spec for spec in specs}


#: Curated single scenarios, keyed by name.
BUILTIN_SCENARIOS: dict[str, ScenarioSpec] = _builtin_scenarios()


def _builtin_matrices() -> dict[str, ScenarioMatrix]:
    return {
        "default": ScenarioMatrix(
            name="default",
            platforms=("exynos5410", "tegra_parker"),
            regimes=("default", "flash_crowd", "low_battery"),
            app_mixes=("core",),
            schemes=("Interactive", "EBS", "PES"),
            traces_per_app=1,
            description="both platforms x three regimes on the core app mix",
        ),
        "regimes": ScenarioMatrix(
            name="regimes",
            platforms=("exynos5410",),
            regimes=(
                "default",
                "flash_crowd",
                "background_idle",
                "low_battery",
                "marathon",
                "network_limited",
                "fg_bg_switching",
            ),
            app_mixes=("core",),
            schemes=("Interactive", "EBS", "PES"),
            traces_per_app=1,
            description="every session regime on the primary platform",
        ),
        "reactive": ScenarioMatrix(
            name="reactive",
            platforms=("exynos5410", "tegra_parker"),
            regimes=(
                "default",
                "flash_crowd",
                "background_idle",
                "low_battery",
                "marathon",
                "network_limited",
                "fg_bg_switching",
            ),
            app_mixes=("core",),
            schemes=("Interactive", "Ondemand", "EBS"),
            traces_per_app=1,
            description="training-free breadth sweep of the reactive baselines",
        ),
        "full": ScenarioMatrix(
            name="full",
            platforms=("exynos5410", "tegra_parker"),
            regimes=(
                "default",
                "flash_crowd",
                "background_idle",
                "low_battery",
                "marathon",
                "network_limited",
                "fg_bg_switching",
            ),
            app_mixes=("seen", "unseen"),
            schemes=("Interactive", "Ondemand", "EBS", "PES"),
            traces_per_app=2,
            description="the overnight breadth run: 28 scenarios, every scheme",
        ),
        "platform_sweep": ScenarioMatrix(
            name="platform_sweep",
            platform_sweep=PlatformSweep(
                platforms=("exynos5410",),
                big_core_counts=(None, 2),
                # Upward: a little cluster nearing big-core IPC starts
                # winning scheduler placements; downward sweeps are inert
                # for mixes the schedulers already keep on the big cluster.
                perf_scales=(None, 0.9),
                thermal_models=(None, "passive_phone", "cramped_chassis"),
            ),
            regimes=("default",),
            app_mixes=("core",),
            schemes=("Interactive", "EBS", "PES"),
            description="platform parameters as the axis: cores x IPC x thermal curves",
        ),
        "thermal": ScenarioMatrix(
            name="thermal",
            platform_sweep=PlatformSweep(
                platforms=("exynos5410",),
                thermal_models=(None, "passive_phone", "cramped_chassis"),
            ),
            regimes=("flash_crowd", "marathon"),
            app_mixes=("core",),
            schemes=("Interactive", "EBS"),
            description="throttle-dwell study: short bursts vs marathons per curve",
        ),
        # The per-event counterpart of the "thermal" matrix: the same curve x
        # regime grid, but throttled live inside the engines.  The comparison
        # is the headline result of dynamic mode — the static collapse
        # (flat-out dwell for the whole session) throttles marathons hardest,
        # while live dynamics show the opposite: ~50%-duty flash-crowd bursts
        # heat the package past its thresholds and low-duty marathons never do.
        # Resilience matrix: the same (scheme x trace) grid replayed under
        # each fault preset plus a fault-free control column.  The headline
        # read-out is ``scenario_faults_table`` — how much QoS and energy
        # each scheme gives up per fault family, and how often the injected
        # faults are absorbed (deadline still met / cap still right).
        "fault_sweep": ScenarioMatrix(
            name="fault_sweep",
            platforms=("exynos5410",),
            regimes=("default",),
            app_mixes=("core",),
            schemes=("Interactive", "EBS", "PES"),
            fault_specs=(
                None,
                get_fault_preset("predictor_flaky"),
                get_fault_preset("dvfs_flaky"),
                get_fault_preset("lossy_events"),
                get_fault_preset("rail_brownout"),
                get_fault_preset("chaos"),
            ),
            traces_per_app=1,
            description="fault presets x schemes: degradation and recovery under injected faults",
        ),
        "thermal_dynamic": ScenarioMatrix(
            name="thermal_dynamic",
            platform_sweep=PlatformSweep(
                platforms=("exynos5410",),
                thermal_models=(None, "passive_phone", "cramped_chassis"),
            ),
            regimes=("flash_crowd", "marathon"),
            app_mixes=("core",),
            schemes=("Interactive", "EBS"),
            thermal_mode="dynamic",
            description="per-event thermal dynamics: live mid-session throttling per curve",
        ),
    }


#: Named matrices, keyed by name.
MATRICES: dict[str, ScenarioMatrix] = _builtin_matrices()


def list_scenarios() -> list[str]:
    return sorted(BUILTIN_SCENARIOS)


def list_matrices() -> list[str]:
    return sorted(MATRICES)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return BUILTIN_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(list_scenarios())}"
        ) from None


def get_matrix(name: str) -> ScenarioMatrix:
    try:
        return MATRICES[name]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; available: {', '.join(list_matrices())}"
        ) from None
