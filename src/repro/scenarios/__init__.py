"""Declarative scenario matrix: breadth evaluation beyond the default workload.

The ROADMAP north-star asks for "as many scenarios as you can imagine";
this package is the layer that makes a scenario a first-class, declarative
object instead of an ad-hoc script:

* :class:`~repro.scenarios.spec.ScenarioSpec` — one evaluation cell
  (platform x session regime x app mix x schemes, plus a PES tuning),
* :class:`~repro.scenarios.spec.ScenarioMatrix` — a cross-product of those
  axes expanded into specs,
* :class:`~repro.scenarios.runner.ScenarioRunner` — fans every
  (scenario x scheme x trace) job through the parallel evaluation engine
  with streaming per-scenario aggregation,
* :mod:`~repro.scenarios.library` — curated built-in scenarios and named
  matrices (``python -m repro scenarios list``).
"""

from repro.scenarios.checkpoint import ArtefactError, MatrixJournal, ShardJournal
from repro.scenarios.library import (
    BUILTIN_SCENARIOS,
    MATRICES,
    get_matrix,
    get_scenario,
    list_matrices,
    list_scenarios,
)
from repro.scenarios.runner import (
    ScenarioResult,
    ScenarioRunner,
    load_results,
    results_to_payload,
    results_to_rows,
    write_results,
)
from repro.scenarios.spec import (
    APP_MIXES,
    ScenarioMatrix,
    ScenarioSpec,
    resolve_app_mix,
)
from repro.scenarios.sweep import PlatformSweep, PlatformVariant

__all__ = [
    "APP_MIXES",
    "ArtefactError",
    "BUILTIN_SCENARIOS",
    "MATRICES",
    "MatrixJournal",
    "PlatformSweep",
    "PlatformVariant",
    "ScenarioMatrix",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "ShardJournal",
    "get_matrix",
    "get_scenario",
    "list_matrices",
    "list_scenarios",
    "load_results",
    "resolve_app_mix",
    "results_to_payload",
    "results_to_rows",
    "write_results",
]
