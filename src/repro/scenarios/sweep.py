"""Platform-parameter sweeps: the platform itself as a scenario axis.

Every scenario before this module named one of two fixed SoCs.  A
:class:`PlatformSweep` instead cross-products platform *parameters* —
base platform, big/little core counts, the little cluster's relative IPC
(``perf_scale``), and a thermal throttling curve
(:mod:`repro.hardware.thermal`) — into :class:`PlatformVariant` cells.
Each variant derives a concrete :class:`~repro.hardware.acmp.AcmpSystem`
via :func:`~repro.hardware.platforms.derive_platform` plus
:meth:`~repro.hardware.thermal.ThermalModel.constrain`, and labels itself
(``exynos5410+b2+ps0.3+th.passive_phone``) so swept matrix cells stay
unique and self-describing — the label is what keys worker-local simulator
caches in :meth:`~repro.runtime.parallel.ParallelEvaluator.evaluate_matrix`,
so two variants that differ in any override never share a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.hardware.acmp import AcmpSystem
from repro.hardware.platforms import (
    derive_platform,
    get_platform,
    list_platforms,
    platform_override_tokens,
)
from repro.hardware.thermal import ThermalModel, get_thermal_model, list_thermal_models


@dataclass(frozen=True)
class PlatformVariant:
    """One point of a platform sweep: a base platform plus overrides.

    ``None`` fields keep the base platform's value.  ``perf_scale``
    overrides the *little* cluster's relative IPC (the big cluster defines
    1.0); ``thermal`` names a curve from
    :data:`repro.hardware.thermal.THERMAL_MODELS`.
    """

    platform: str = "exynos5410"
    big_cores: int | None = None
    little_cores: int | None = None
    perf_scale: float | None = None
    thermal: str | None = None

    def __post_init__(self) -> None:
        if self.platform not in list_platforms():
            raise ValueError(
                f"unknown platform {self.platform!r}; available: {', '.join(list_platforms())}"
            )
        for label, cores in (("big_cores", self.big_cores), ("little_cores", self.little_cores)):
            if cores is not None and cores < 1:
                raise ValueError(f"{label} must be >= 1")
        if self.perf_scale is not None and not 0.0 < self.perf_scale <= 1.0:
            raise ValueError("perf_scale must be in (0, 1]")
        if self.thermal is not None:
            get_thermal_model(self.thermal)  # raises KeyError with the available names

    @property
    def label(self) -> str:
        """Unique cell label: platform plus one ``+token`` per override.

        Tokens come from :func:`~repro.hardware.platforms.platform_override_tokens`
        (the same grammar derived system names use; ``ps`` is ``repr``-based
        and therefore injective on floats), plus a ``th.<curve>`` token for
        the thermal axis — so distinct variants can never collide on
        cell name.
        """
        tokens = [self.platform] + platform_override_tokens(
            big_cores=self.big_cores,
            little_cores=self.little_cores,
            little_perf_scale=self.perf_scale,
        )
        if self.thermal is not None:
            tokens.append(f"th.{self.thermal}")
        return "+".join(tokens)

    @property
    def is_base_platform(self) -> bool:
        return (
            self.big_cores is None
            and self.little_cores is None
            and self.perf_scale is None
            and self.thermal is None
        )

    def thermal_model(self) -> ThermalModel | None:
        return get_thermal_model(self.thermal) if self.thermal is not None else None

    def derived_system(self) -> AcmpSystem:
        """The base platform with the parameter overrides applied (no thermal).

        This is the single derivation path: :meth:`ScenarioSpec.system`
        composes it with the regime's cap and the thermal throttle, and
        :meth:`system` composes it with the thermal throttle alone.
        """
        return derive_platform(
            get_platform(self.platform),
            big_cores=self.big_cores,
            little_cores=self.little_cores,
            little_perf_scale=self.perf_scale,
        )

    def system(self, *, thermal_dwell_s: float | None = None) -> AcmpSystem:
        """Derive the concrete platform (thermal throttle applied last).

        ``thermal_dwell_s`` bounds the heat-up time (a session's length):
        short sessions never reach the steady-state temperature, so the
        same curve throttles a marathon harder than a flash-crowd burst.
        """
        system = self.derived_system()
        model = self.thermal_model()
        if model is not None:
            system = model.constrain(system, dwell_s=thermal_dwell_s)
        return system

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "big_cores": self.big_cores,
            "little_cores": self.little_cores,
            "perf_scale": self.perf_scale,
            "thermal": self.thermal,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PlatformVariant":
        return cls(
            platform=payload.get("platform", "exynos5410"),
            big_cores=payload.get("big_cores"),
            little_cores=payload.get("little_cores"),
            perf_scale=payload.get("perf_scale"),
            thermal=payload.get("thermal"),
        )


@dataclass(frozen=True)
class PlatformSweep:
    """Cross-product of platform parameters, one :class:`PlatformVariant` per cell.

    Any axis may hold ``None`` entries ("keep the platform's value"), so a
    sweep can include the unmodified baseline alongside its variants.
    Expansion order is deterministic: platforms outermost, then big cores,
    little cores, perf scales, thermal models.
    """

    platforms: tuple[str, ...] = ("exynos5410",)
    big_core_counts: tuple[int | None, ...] = (None,)
    little_core_counts: tuple[int | None, ...] = (None,)
    perf_scales: tuple[float | None, ...] = (None,)
    thermal_models: tuple[str | None, ...] = (None,)
    _variants: tuple[PlatformVariant, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for axis_name, axis in (
            ("platforms", self.platforms),
            ("big_core_counts", self.big_core_counts),
            ("little_core_counts", self.little_core_counts),
            ("perf_scales", self.perf_scales),
            ("thermal_models", self.thermal_models),
        ):
            if not axis:
                raise ValueError(f"platform sweep has an empty {axis_name} axis")
            if len(set(axis)) != len(axis):
                raise ValueError(f"platform sweep {axis_name} axis has duplicate entries")
        # Expand once, eagerly: a bad axis value fails here (before any
        # matrix is built), and every later variants()/n_variants access —
        # matrix validation, n_cells, expand, CLI summaries — reuses the
        # cached tuple instead of re-deriving the cross-product.
        object.__setattr__(self, "_variants", tuple(self._expand_variants()))

    @property
    def n_variants(self) -> int:
        """Distinct variants after per-platform normalisation (see :meth:`variants`)."""
        return len(self._variants)

    def variants(self) -> list[PlatformVariant]:
        """One validated :class:`PlatformVariant` per cell, deterministic order.

        Overrides equal to a platform's own value are normalised to ``None``
        per platform, and cells that collapse to the same variant are
        deduplicated (first occurrence wins).  So
        ``big_core_counts=(None, 4)`` on the 4-big-core Exynos yields one
        baseline cell, not two identically-derived cells under different
        labels — while the same axis still produces a real variant on a
        platform whose big cluster is not 4 cores.
        """
        return list(self._variants)

    def _expand_variants(self) -> list[PlatformVariant]:
        seen: set[PlatformVariant] = set()
        variants: list[PlatformVariant] = []
        for platform, big, little, perf, thermal in product(
            self.platforms,
            self.big_core_counts,
            self.little_core_counts,
            self.perf_scales,
            self.thermal_models,
        ):
            base = get_platform(platform)
            if big == base.big_cluster.core_count:
                big = None
            if little == base.little_cluster.core_count:
                little = None
            if perf == base.little_cluster.perf_scale:
                perf = None
            variant = PlatformVariant(
                platform=platform,
                big_cores=big,
                little_cores=little,
                perf_scale=perf,
                thermal=thermal,
            )
            if variant in seen:
                continue
            seen.add(variant)
            variants.append(variant)
        return variants

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "platforms": list(self.platforms),
            "big_core_counts": list(self.big_core_counts),
            "little_core_counts": list(self.little_core_counts),
            "perf_scales": list(self.perf_scales),
            "thermal_models": list(self.thermal_models),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PlatformSweep":
        return cls(
            platforms=tuple(payload.get("platforms", ("exynos5410",))),
            big_core_counts=tuple(payload.get("big_core_counts", (None,))),
            little_core_counts=tuple(payload.get("little_core_counts", (None,))),
            perf_scales=tuple(payload.get("perf_scales", (None,))),
            thermal_models=tuple(payload.get("thermal_models", (None,))),
        )


__all__ = ["PlatformSweep", "PlatformVariant", "list_thermal_models"]
