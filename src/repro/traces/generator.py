"""Synthetic user-session generation.

The generator replaces the Mosaic-recorded user traces of the paper.  Its
behaviour model is deliberately *feature-driven*: the probability of each
next event type is a multinomial logit over the same five features of
Table 1 that the PES predictor observes, sharpened so that the most likely
event is chosen with probability ``1 - behaviour_entropy`` (per app).  This
preserves the property the paper's prediction scheme rests on — event
sequences within a session are strongly temporally correlated and therefore
statistically inferable — while giving each application a controllable
level of difficulty that reproduces the accuracy spread of Fig. 8.

Timing follows the published session statistics: sessions of roughly 110 s
containing roughly 25 events (up to 70), with long think times after loads
and taps and short gaps inside scroll bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.hardware.dvfs import DvfsModel
from repro.traces.session_state import SessionState
from repro.utils import mp_context, pool_chunk_size, resolve_jobs
from repro.traces.trace import Trace, TraceEvent, TraceSet
from repro.traces.workload import WorkloadModel
from repro.webapp.apps import AppCatalog, AppProfile
from repro.webapp.dom import DomNode
from repro.webapp.events import EventType, Interaction, interaction_of

#: Ground-truth behaviour weights: score(event) = bias + w · features.
#: Feature order: clickable fraction, link fraction, distance-to-click,
#: navigations-in-window, scrolls-in-window (all normalised to [0, 1]).
#:
#: The weights encode the browsing cycle the paper's characterisation
#: describes: after a load or a tap the user scrolls (reads), scrolling
#: accumulates until a target is found (scrolls-in-window high, long since
#: the last click) and a tap follows, navigating taps lead to a load.  The
#: cycle is a deterministic function of the observable features, which is
#: what makes the sequence statistically inferable; per-application
#: ``behaviour_entropy`` injects deviations from it.
DEFAULT_BEHAVIOR_WEIGHTS: Mapping[EventType, tuple[float, tuple[float, float, float, float, float]]] = {
    EventType.SCROLL: (1.6, (0.0, 0.3, -0.6, 1.2, -3.0)),
    EventType.TOUCHMOVE: (0.3, (0.0, 0.2, -0.5, 0.6, -2.2)),
    EventType.CLICK: (-2.0, (2.2, 0.4, 1.5, -1.0, 2.0)),
    EventType.TOUCHSTART: (-2.6, (2.0, 0.3, 1.3, -0.8, 1.8)),
    EventType.SUBMIT: (-3.4, (1.0, 0.0, 0.8, 0.0, 1.5)),
    EventType.LOAD: (-4.0, (0.0, 0.0, 0.0, 3.0, 0.0)),
}


@dataclass(frozen=True)
class SessionConfig:
    """Session length and think-time parameters."""

    target_duration_ms: float = 110_000.0
    max_events: int = 70
    min_events: int = 10
    #: Median gap (ms) between a page load being *triggered* and the user's
    #: next input.  Users routinely interact before the load finishes
    #: rendering, which is the main source of event interference (the Fig. 2
    #: scenario: the load's execution eats into the following events' time
    #: budgets).
    think_after_load_ms: float = 2800.0
    #: Median think time (ms) before a tap that follows scrolling (the user
    #: spots a target mid-scroll) — short, the other interference source.
    think_tap_after_move_ms: float = 700.0
    #: Median think time (ms) before a tap that follows another tap (menu →
    #: menu item, field → submit).  Short enough that the second tap's budget
    #: is often squeezed by the first one's execution (Type II/III events).
    think_tap_after_tap_ms: float = 600.0
    #: Median think time (ms) before a tap in other contexts.
    think_tap_ms: float = 3500.0
    #: Median gap (ms) between consecutive move events inside a burst.
    move_burst_gap_ms: float = 250.0
    #: Median gap (ms) before the first move of a burst (reading time).
    move_start_gap_ms: float = 7000.0
    #: Log-normal sigma applied to every think-time draw.
    think_sigma: float = 0.55
    #: Minimum gap between two user inputs (ms).
    min_gap_ms: float = 25.0
    #: Probability that a tap lands on a navigating target (link) when
    #: non-navigating targets are also available; keeps the number of page
    #: loads per session realistic (a handful, not dozens).
    navigation_probability: float = 0.15

    def __post_init__(self) -> None:
        if self.target_duration_ms <= 0:
            raise ValueError("target_duration_ms must be positive")
        if not 0 < self.min_events <= self.max_events:
            raise ValueError("need 0 < min_events <= max_events")
        if self.min_gap_ms <= 0:
            raise ValueError("min_gap_ms must be positive")


class UserBehaviorModel:
    """Feature-driven multinomial behaviour model for one application."""

    def __init__(
        self,
        profile: AppProfile,
        weights: Mapping[EventType, tuple[float, tuple[float, ...]]] | None = None,
    ):
        self.profile = profile
        self.weights = dict(weights or DEFAULT_BEHAVIOR_WEIGHTS)

    def scores(self, features: np.ndarray, candidates: set[EventType]) -> dict[EventType, float]:
        """Raw behaviour scores for the candidate next events."""
        result: dict[EventType, float] = {}
        for event_type in candidates:
            if event_type not in self.weights:
                continue
            bias, w = self.weights[event_type]
            result[event_type] = bias + float(np.dot(np.asarray(w), features))
        return result

    def next_event_type(
        self, state: SessionState, rng: np.random.Generator
    ) -> EventType:
        """Draw the next event type given the session state.

        With probability ``1 - behaviour_entropy`` the user follows the
        feature-driven pattern (argmax score); otherwise they do something
        else among the currently possible events.
        """
        candidates = state.available_events()
        if not candidates:
            return EventType.SCROLL
        if candidates == {EventType.LOAD}:
            return EventType.LOAD

        scored = self.scores(state.features(), candidates)
        if not scored:
            ordered_candidates = sorted(candidates, key=lambda e: e.value)
            return ordered_candidates[int(rng.integers(len(ordered_candidates)))]
        ordered = sorted(scored.items(), key=lambda kv: (-kv[1], kv[0].value))
        most_likely = ordered[0][0]
        if rng.random() >= self.profile.behaviour_entropy or len(ordered) == 1:
            return most_likely
        alternatives = [event for event, _ in ordered[1:]]
        return alternatives[int(rng.integers(len(alternatives)))]


def substream_seeds(base_seed: int, count: int) -> list[int]:
    """Derive ``count`` independent per-trace seeds from one base seed.

    Uses :class:`numpy.random.SeedSequence.spawn` so the derived streams are
    statistically independent, and folds each child into a plain integer
    seed so the trace it produces is reproducible from ``Trace.seed`` alone.
    Because the spawn happens up front (indexed by trace position, not by
    worker), parallel generation yields the same traces for any worker
    count.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


@dataclass
class TraceGenerator:
    """Generates interaction sessions for the benchmark applications."""

    catalog: AppCatalog = field(default_factory=AppCatalog)
    session: SessionConfig = field(default_factory=SessionConfig)
    behavior_weights: Mapping[EventType, tuple[float, tuple[float, ...]]] | None = None
    #: Per-interaction workload overrides (session-regime presets); ``None``
    #: keeps :data:`repro.traces.workload.INTERACTION_WORKLOADS`.
    workload_params: Mapping | None = None

    # -- public API ------------------------------------------------------------

    def generate(self, app_name: str, *, seed: int, user_id: str | None = None) -> Trace:
        """Generate one session for ``app_name`` with a deterministic seed."""
        profile = self.catalog.get(app_name)
        rng = np.random.default_rng(seed)
        behaviour = UserBehaviorModel(profile, self.behavior_weights)
        workload = WorkloadModel(profile, params=self.workload_params)
        state = SessionState.fresh(profile)

        events: list[TraceEvent] = []
        time_ms = 0.0
        previous_type: EventType | None = None

        # The session starts with the initial page load.
        events.append(self._make_event(0, EventType.LOAD, f"{app_name}-body", 0.0, workload, rng, navigates=False))
        state.apply_event(EventType.LOAD, f"{app_name}-body")
        previous_type = EventType.LOAD

        while len(events) < self.session.max_events:
            next_type = behaviour.next_event_type(state, rng)
            node, navigates = self._pick_target(state, next_type, rng)
            if node is None:
                next_type = EventType.SCROLL
                node, navigates = self._pick_target(state, next_type, rng)
                if node is None:
                    break

            gap = self._think_time(previous_type, next_type, rng)
            time_ms += gap
            if time_ms > self.session.target_duration_ms and len(events) >= self.session.min_events:
                break

            events.append(
                self._make_event(len(events), next_type, node.node_id, time_ms, workload, rng, navigates=navigates)
            )
            state.apply_event(next_type, node.node_id, navigates=navigates)
            previous_type = next_type

        user = user_id or f"user-{seed}"
        return Trace(app_name=app_name, user_id=user, events=events, seed=seed)

    def generate_many(
        self,
        app_names: Sequence[str],
        traces_per_app: int,
        *,
        base_seed: int = 0,
        independent_streams: bool = False,
    ) -> TraceSet:
        """Generate ``traces_per_app`` sessions for each named application.

        With ``independent_streams`` the per-trace seeds are derived through
        :func:`substream_seeds` (``SeedSequence.spawn``) instead of the
        legacy ``base_seed + app_index * 1000 + t`` arithmetic; this is the
        seeding used for parallel generation and for sweeps large enough
        that the arithmetic seeds of adjacent apps would collide.
        """
        specs = self._trace_specs(
            app_names, traces_per_app, base_seed, independent_streams
        )
        traces = TraceSet()
        for app_name, seed in specs:
            traces.add(self.generate(app_name, seed=seed))
        return traces

    def generate_many_parallel(
        self,
        app_names: Sequence[str],
        traces_per_app: int,
        *,
        base_seed: int = 0,
        jobs: int | None = 1,
        chunk_size: int | None = None,
    ) -> TraceSet:
        """Parallel :meth:`generate_many` over a process pool.

        Always uses :func:`substream_seeds`, so the result is identical for
        any ``jobs`` value — each trace's seed is fixed by its position
        before any worker starts.  ``jobs=0`` (or ``None``) means one
        worker per CPU.
        """
        specs = self._trace_specs(app_names, traces_per_app, base_seed, True)
        workers = min(resolve_jobs(jobs), max(len(specs), 1))
        if workers == 1 or len(specs) <= 1:
            traces = TraceSet()
            for app_name, seed in specs:
                traces.add(self.generate(app_name, seed=seed))
            return traces

        chunk = chunk_size or pool_chunk_size(len(specs), workers)
        pool = mp_context().Pool(
            processes=workers, initializer=_init_generation_worker, initargs=(self,)
        )
        try:
            generated = pool.map(_generate_one, specs, chunksize=chunk)
        finally:
            pool.close()
            pool.join()
        traces = TraceSet()
        traces.extend(generated)
        return traces

    def _trace_specs(
        self,
        app_names: Sequence[str],
        traces_per_app: int,
        base_seed: int,
        independent_streams: bool,
    ) -> list[tuple[str, int]]:
        """The (app, seed) list for a batch, in deterministic order."""
        if independent_streams:
            seeds = substream_seeds(base_seed, len(app_names) * traces_per_app)
            return [
                (app_name, seeds[app_index * traces_per_app + t])
                for app_index, app_name in enumerate(app_names)
                for t in range(traces_per_app)
            ]
        return [
            (app_name, base_seed + app_index * 1000 + t)
            for app_index, app_name in enumerate(app_names)
            for t in range(traces_per_app)
        ]

    # -- internals ---------------------------------------------------------------

    def _make_event(
        self,
        index: int,
        event_type: EventType,
        node_id: str,
        arrival_ms: float,
        workload: WorkloadModel,
        rng: np.random.Generator,
        *,
        navigates: bool,
    ) -> TraceEvent:
        return TraceEvent(
            index=index,
            event_type=event_type,
            node_id=node_id,
            arrival_ms=arrival_ms,
            workload=workload.sample(event_type, rng),
            navigates=navigates,
        )

    def _pick_target(
        self, state: SessionState, event_type: EventType, rng: np.random.Generator
    ) -> tuple[DomNode | None, bool]:
        """Choose the DOM node an event lands on and whether it navigates."""
        root = state.dom.root
        if event_type in (EventType.SCROLL, EventType.TOUCHMOVE):
            return root, False
        if event_type is EventType.LOAD:
            return root, False

        if event_type is EventType.SUBMIT:
            submits = [
                n
                for n in state.dom.visible_nodes()
                if EventType.SUBMIT in n.listeners
            ]
            if not submits:
                return None, False
            node = submits[int(rng.integers(len(submits)))]
            return node, state.semantic.effect_of(node.node_id, event_type).navigates

        # Tap targets: visible nodes carrying the listener for this event type.
        candidates = [n for n in state.dom.visible_nodes() if event_type in n.listeners and n is not root]
        if not candidates:
            return None, False
        navigating = [
            n for n in candidates if state.semantic.effect_of(n.node_id, event_type).navigates
        ]
        in_page = [n for n in candidates if n not in navigating]
        if in_page and (not navigating or rng.random() >= self.session.navigation_probability):
            pool = in_page
        else:
            pool = navigating or in_page
        node = pool[int(rng.integers(len(pool)))]
        navigates = state.semantic.effect_of(node.node_id, event_type).navigates
        return node, navigates

    def _think_time(
        self,
        previous_type: EventType | None,
        next_type: EventType,
        rng: np.random.Generator,
    ) -> float:
        """Gap (ms) between the previous event's arrival and the next one's."""
        cfg = self.session
        prev_interaction = interaction_of(previous_type) if previous_type else None
        next_interaction = interaction_of(next_type)

        if prev_interaction is Interaction.LOAD:
            median = cfg.think_after_load_ms
        elif next_interaction is Interaction.MOVE and prev_interaction is Interaction.MOVE:
            median = cfg.move_burst_gap_ms
        elif next_interaction is Interaction.MOVE:
            median = cfg.move_start_gap_ms
        elif next_interaction is Interaction.TAP and prev_interaction is Interaction.MOVE:
            median = cfg.think_tap_after_move_ms
        elif next_interaction is Interaction.TAP and prev_interaction is Interaction.TAP:
            median = cfg.think_tap_after_tap_ms
        else:
            median = cfg.think_tap_ms

        think = float(rng.lognormal(np.log(median), cfg.think_sigma))
        return max(cfg.min_gap_ms, think)


# -- generation pool workers ----------------------------------------------------------

_GENERATION_WORKER: TraceGenerator | None = None


def _init_generation_worker(generator: TraceGenerator) -> None:
    global _GENERATION_WORKER
    _GENERATION_WORKER = generator


def _generate_one(spec: tuple[str, int]) -> Trace:
    assert _GENERATION_WORKER is not None, "generation pool was not initialised"
    app_name, seed = spec
    return _GENERATION_WORKER.generate(app_name, seed=seed)
