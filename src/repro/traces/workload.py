"""Per-event compute workload model.

Each event's CPU work is a :class:`~repro.hardware.dvfs.DvfsModel`
(``Tmem`` + ``Ndep``).  The magnitudes are calibrated so that, on the big
cluster at its maximum frequency, typical events land where the paper's
QoS analysis needs them:

* ``load``  — roughly 1–2.5 s against a 3 s target,
* ``tap``   — roughly 80–250 ms against a 300 ms target, with a per-app
  fraction of "heavy" taps that exceed the target even at maximum
  performance (the paper's Type I events),
* ``move``  — roughly 8–25 ms against a 33 ms target, again with a small
  heavy tail.

The distributions are log-normal (long-tailed, like real callback work) and
scaled by the application's ``workload_scale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.hardware.dvfs import DvfsModel
from repro.webapp.apps import AppProfile
from repro.webapp.events import EventType, Interaction, interaction_of


@dataclass(frozen=True)
class WorkloadParams:
    """Log-normal workload parameters for one interaction class.

    ``ndep_median_mcycles`` / ``ndep_sigma`` describe the CPU-dependent work;
    ``tmem_median_ms`` / ``tmem_sigma`` the frequency-invariant memory time.
    ``heavy_ndep_mcycles`` is the median used for heavy (Type I candidate)
    events, drawn with probability given by the application profile.
    """

    ndep_median_mcycles: float
    ndep_sigma: float
    tmem_median_ms: float
    tmem_sigma: float
    heavy_ndep_mcycles: float

    def __post_init__(self) -> None:
        if min(self.ndep_median_mcycles, self.tmem_median_ms, self.heavy_ndep_mcycles) < 0:
            raise ValueError("workload medians must be non-negative")
        if self.ndep_sigma < 0 or self.tmem_sigma < 0:
            raise ValueError("sigmas must be non-negative")


#: Default workload parameters per interaction class.
INTERACTION_WORKLOADS: Mapping[Interaction, WorkloadParams] = {
    Interaction.LOAD: WorkloadParams(
        ndep_median_mcycles=1900.0,
        ndep_sigma=0.25,
        tmem_median_ms=260.0,
        tmem_sigma=0.3,
        heavy_ndep_mcycles=3800.0,
    ),
    Interaction.TAP: WorkloadParams(
        ndep_median_mcycles=260.0,
        ndep_sigma=0.45,
        tmem_median_ms=18.0,
        tmem_sigma=0.4,
        heavy_ndep_mcycles=640.0,
    ),
    Interaction.MOVE: WorkloadParams(
        ndep_median_mcycles=14.0,
        ndep_sigma=0.35,
        tmem_median_ms=2.5,
        tmem_sigma=0.35,
        heavy_ndep_mcycles=48.0,
    ),
}


@dataclass
class WorkloadModel:
    """Samples per-event workloads for an application.

    The model also answers "how heavy would this event *type* typically be"
    without sampling, which the schedulers use when they have to provision
    for a predicted event whose concrete workload has not been measured yet.
    """

    profile: AppProfile
    params: Mapping[Interaction, WorkloadParams] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.params is None:
            self.params = dict(INTERACTION_WORKLOADS)

    def _params_for(self, event_type: EventType) -> WorkloadParams:
        return self.params[interaction_of(event_type)]

    def heavy_probability(self, event_type: EventType) -> float:
        """Probability that an event of this type is drawn from the heavy tail."""
        interaction = interaction_of(event_type)
        if interaction is Interaction.LOAD:
            return self.profile.heavy_tap_fraction * 0.3
        if interaction is Interaction.TAP:
            return self.profile.heavy_tap_fraction
        return self.profile.heavy_tap_fraction * 0.4

    def sample(self, event_type: EventType, rng: np.random.Generator) -> DvfsModel:
        """Draw one event's workload."""
        params = self._params_for(event_type)
        scale = self.profile.workload_scale
        heavy = rng.random() < self.heavy_probability(event_type)
        ndep_median = params.heavy_ndep_mcycles if heavy else params.ndep_median_mcycles
        ndep = float(rng.lognormal(np.log(ndep_median * scale), params.ndep_sigma))
        tmem = float(rng.lognormal(np.log(params.tmem_median_ms * scale), params.tmem_sigma))
        return DvfsModel(tmem_ms=tmem, ndep_mcycles=ndep)

    def typical(self, event_type: EventType) -> DvfsModel:
        """The median (non-heavy) workload for an event type, unscaled by noise.

        Used by schedulers that must provision for a *predicted* event before
        its real workload has been calibrated.
        """
        params = self._params_for(event_type)
        scale = self.profile.workload_scale
        return DvfsModel(
            tmem_ms=params.tmem_median_ms * scale,
            ndep_mcycles=params.ndep_median_mcycles * scale,
        )
