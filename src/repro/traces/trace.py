"""Trace data model: events, sessions, and collections of sessions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.hardware.dvfs import DvfsModel
from repro.webapp.events import EventType, Interaction, interaction_of, qos_target_ms


@dataclass(frozen=True)
class TraceEvent:
    """One user-triggered event in an interaction session.

    ``arrival_ms`` is when the user input fires (relative to session start).
    ``workload`` is the DVFS latency model of the event's CPU work
    (callback plus rendering stages).  ``navigates`` records whether the
    event's callback replaces the document — the ground-truth effect used
    when replaying the DOM state alongside the trace.
    """

    index: int
    event_type: EventType
    node_id: str
    arrival_ms: float
    workload: DvfsModel
    navigates: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("index must be non-negative")
        if self.arrival_ms < 0:
            raise ValueError("arrival_ms must be non-negative")

    @property
    def interaction(self) -> Interaction:
        return interaction_of(self.event_type)

    @property
    def qos_target_ms(self) -> float:
        return qos_target_ms(self.event_type)

    @property
    def deadline_ms(self) -> float:
        """Absolute deadline: arrival plus the interaction's QoS target."""
        return self.arrival_ms + self.qos_target_ms


@dataclass
class Trace:
    """One user interaction session with one application."""

    app_name: str
    user_id: str
    events: list[TraceEvent] = field(default_factory=list)
    seed: int | None = None

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        last_arrival = -1.0
        for position, event in enumerate(self.events):
            if event.index != position:
                raise ValueError(
                    f"event at position {position} has index {event.index}; "
                    "trace events must be indexed consecutively from 0"
                )
            if event.arrival_ms < last_arrival:
                raise ValueError("trace events must be sorted by arrival time")
            last_arrival = event.arrival_ms

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self.events[index]

    @property
    def duration_ms(self) -> float:
        """Session duration: from t=0 to the last event's arrival."""
        if not self.events:
            return 0.0
        return self.events[-1].arrival_ms

    @property
    def event_types(self) -> list[EventType]:
        return [event.event_type for event in self.events]

    def count_by_interaction(self) -> dict[Interaction, int]:
        counts: dict[Interaction, int] = {kind: 0 for kind in Interaction}
        for event in self.events:
            counts[event.interaction] += 1
        return counts

    def slice(self, start: int, stop: int) -> "Trace":
        """A re-indexed sub-session covering events ``start:stop``."""
        selected = self.events[start:stop]
        if not selected:
            return Trace(self.app_name, self.user_id, [], seed=self.seed)
        offset = selected[0].arrival_ms
        reindexed = [
            TraceEvent(
                index=i,
                event_type=e.event_type,
                node_id=e.node_id,
                arrival_ms=e.arrival_ms - offset,
                workload=e.workload,
                navigates=e.navigates,
            )
            for i, e in enumerate(selected)
        ]
        return Trace(self.app_name, self.user_id, reindexed, seed=self.seed)


@dataclass
class TraceSet:
    """A named collection of traces, grouped by application."""

    traces: list[Trace] = field(default_factory=list)

    def add(self, trace: Trace) -> None:
        self.traces.append(trace)

    def extend(self, traces: Sequence[Trace]) -> None:
        self.traces.extend(traces)

    def for_app(self, app_name: str) -> list[Trace]:
        return [t for t in self.traces if t.app_name == app_name]

    def app_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for trace in self.traces:
            seen.setdefault(trace.app_name, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    @property
    def total_events(self) -> int:
        return sum(len(t) for t in self.traces)
