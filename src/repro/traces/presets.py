"""Named session regimes: reusable workload shapes for the scenario matrix.

Every experiment before the scenario subsystem replayed the same narrow
session shape — the default ~110 s, ~25-event browsing session.  A
:class:`SessionRegime` bundles everything that defines a *kind* of session:

* a :class:`~repro.traces.generator.SessionConfig` (length, think times,
  burstiness),
* optional :class:`~repro.traces.workload.WorkloadParams` overrides (how
  heavy the per-event compute is under that regime), and
* an optional platform frequency cap
  (:meth:`~repro.hardware.acmp.AcmpSystem.with_frequency_cap`) for regimes
  that constrain the hardware rather than the user.

The built-in regimes cover the breadth the evaluation was missing:

``default``
    The paper's session statistics (~110 s, ~25 events).
``flash_crowd``
    Bursty, short, tap-heavy sessions — a breaking-news or flash-sale
    crowd hammering a page.  Short think times squeeze event budgets, so
    event interference is maximal.
``background_idle``
    A long-lived background tab the user glances at occasionally: very few
    events spread over minutes, so idle energy dominates and an aggressive
    scheduler has almost nothing to save.
``low_battery``
    The user's battery saver kicked in: session behaviour is ordinary but
    the OS caps every cluster's frequency, shrinking the configuration
    space every scheduler plans over.
``marathon``
    A long mixed browsing day: maximum-length sessions with heavier pages,
    the shape that stresses streaming aggregation and scheduler reuse.
``network_limited``
    A congested or metered link: page loads wait on the network, so the
    frequency-invariant memory/network time (``Tmem``) dominates and racing
    the CPU buys little — the regime where reactive boosting wastes most.
``fg_bg_switching``
    The user bounces between the browser and other apps: short foreground
    bursts separated by long background lulls, with frequent re-entry
    navigations.  High think-time variance makes arrival times hard to
    anticipate, stressing the predictor's arrival conservatism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.hardware.acmp import AcmpSystem
from repro.traces.generator import SessionConfig
from repro.traces.workload import INTERACTION_WORKLOADS, WorkloadParams
from repro.webapp.events import Interaction


def scaled_workloads(
    scale: float,
    base: Mapping[Interaction, WorkloadParams] | None = None,
    *,
    tmem_scale: float | None = None,
) -> dict[Interaction, WorkloadParams]:
    """Workload parameters with every median scaled by ``scale``.

    Sigmas are left untouched: the regime changes how heavy events are, not
    how variable they are.  ``tmem_scale`` overrides the factor applied to
    the frequency-invariant memory/network time, letting regimes shift the
    compute-vs-network balance (``network_limited`` inflates ``Tmem`` alone,
    so higher frequencies stop buying latency).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    tmem = scale if tmem_scale is None else tmem_scale
    if tmem <= 0:
        raise ValueError("tmem_scale must be positive")
    source = base if base is not None else INTERACTION_WORKLOADS
    return {
        interaction: replace(
            params,
            ndep_median_mcycles=params.ndep_median_mcycles * scale,
            tmem_median_ms=params.tmem_median_ms * tmem,
            heavy_ndep_mcycles=params.heavy_ndep_mcycles * scale,
        )
        for interaction, params in source.items()
    }


@dataclass(frozen=True)
class SessionRegime:
    """One named session shape usable as a scenario axis."""

    name: str
    session: SessionConfig
    #: Per-interaction workload overrides; ``None`` keeps the defaults.
    workload_params: Mapping[Interaction, WorkloadParams] | None = None
    #: Cap applied to every cluster of the scenario's platform; ``None``
    #: leaves the platform unconstrained.
    frequency_cap_mhz: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a regime needs a name")
        if self.frequency_cap_mhz is not None and self.frequency_cap_mhz <= 0:
            raise ValueError("frequency_cap_mhz must be positive")

    def constrain(self, system: AcmpSystem) -> AcmpSystem:
        """Apply the regime's hardware constraint (if any) to ``system``."""
        if self.frequency_cap_mhz is None:
            return system
        return system.with_frequency_cap(self.frequency_cap_mhz)


def _builtin_regimes() -> dict[str, SessionRegime]:
    return {
        "default": SessionRegime(
            name="default",
            session=SessionConfig(),
            description="the paper's session statistics (~110 s, ~25 events)",
        ),
        "flash_crowd": SessionRegime(
            name="flash_crowd",
            session=SessionConfig(
                target_duration_ms=45_000.0,
                max_events=70,
                min_events=15,
                think_after_load_ms=900.0,
                think_tap_after_move_ms=250.0,
                think_tap_after_tap_ms=200.0,
                think_tap_ms=1_100.0,
                move_burst_gap_ms=120.0,
                move_start_gap_ms=1_500.0,
                think_sigma=0.45,
                navigation_probability=0.25,
            ),
            workload_params=scaled_workloads(1.15),
            description="bursty tap-heavy sessions with squeezed event budgets",
        ),
        "background_idle": SessionRegime(
            name="background_idle",
            session=SessionConfig(
                target_duration_ms=300_000.0,
                max_events=18,
                min_events=4,
                think_after_load_ms=20_000.0,
                think_tap_after_move_ms=4_000.0,
                think_tap_after_tap_ms=3_500.0,
                think_tap_ms=60_000.0,
                move_burst_gap_ms=600.0,
                move_start_gap_ms=45_000.0,
                think_sigma=0.7,
                navigation_probability=0.08,
            ),
            workload_params=scaled_workloads(0.8),
            description="sparse background-tab sessions where idle energy dominates",
        ),
        "low_battery": SessionRegime(
            name="low_battery",
            session=SessionConfig(
                target_duration_ms=90_000.0,
                think_tap_ms=4_500.0,
            ),
            frequency_cap_mhz=1_100,
            description="battery saver active: every cluster capped at 1.1 GHz",
        ),
        "marathon": SessionRegime(
            name="marathon",
            session=SessionConfig(
                target_duration_ms=600_000.0,
                max_events=70,
                min_events=40,
                think_after_load_ms=4_000.0,
                think_tap_ms=6_000.0,
                move_start_gap_ms=9_000.0,
            ),
            workload_params=scaled_workloads(1.1),
            description="long mixed browsing days at maximum session length",
        ),
        "network_limited": SessionRegime(
            name="network_limited",
            session=SessionConfig(
                target_duration_ms=140_000.0,
                # Loads stall on the network, so users wait longer before
                # the next input and re-navigate more (retries, redirects).
                think_after_load_ms=5_500.0,
                navigation_probability=0.22,
            ),
            # Tmem (frequency-invariant network/memory stalls) triples while
            # CPU-dependent work stays nominal: the latency floor moves to
            # the link, and boosting frequency mostly burns power.
            workload_params=scaled_workloads(1.0, tmem_scale=3.0),
            description="congested link: network time dominates, boosting buys little",
        ),
        "fg_bg_switching": SessionRegime(
            name="fg_bg_switching",
            session=SessionConfig(
                target_duration_ms=240_000.0,
                max_events=50,
                min_events=12,
                # Foreground bursts: tap chains as tight as flash_crowd...
                think_tap_after_move_ms=350.0,
                think_tap_after_tap_ms=300.0,
                # ...separated by long background lulls (the user is in
                # another app) before the next burst or re-entry load.
                think_tap_ms=25_000.0,
                think_after_load_ms=1_500.0,
                move_start_gap_ms=20_000.0,
                # Bursty-vs-idle bimodality: high sigma stretches the gap
                # distribution's tails in both directions.
                think_sigma=0.95,
                navigation_probability=0.3,
            ),
            description="foreground bursts between long background lulls",
        ),
    }


#: Registry of the built-in regimes, keyed by name.
SESSION_REGIMES: dict[str, SessionRegime] = _builtin_regimes()


def list_regimes() -> list[str]:
    """Names accepted by :func:`get_regime`."""
    return sorted(SESSION_REGIMES)


def get_regime(name: str) -> SessionRegime:
    """Look up a built-in regime; raises ``KeyError`` for unknown names."""
    try:
        return SESSION_REGIMES[name]
    except KeyError:
        raise KeyError(
            f"unknown session regime {name!r}; available: {', '.join(list_regimes())}"
        ) from None
