"""User interaction traces: data model, workloads, generation, serialisation.

The paper records 100+ real user interaction traces with Mosaic and replays
them under each scheduler.  Offline we cannot record real users, so
:mod:`repro.traces.generator` synthesises sessions from per-application
behaviour models that preserve the published statistics (≈110 s sessions,
≈25 events, up to 70, think time between interactions) and the temporal
correlation that makes event sequences predictable.
"""

from repro.traces.trace import TraceEvent, Trace, TraceSet
from repro.traces.workload import WorkloadModel, WorkloadParams, INTERACTION_WORKLOADS
from repro.traces.generator import TraceGenerator, UserBehaviorModel, SessionConfig
from repro.traces.presets import (
    SESSION_REGIMES,
    SessionRegime,
    get_regime,
    list_regimes,
    scaled_workloads,
)
from repro.traces.io import trace_to_dict, trace_from_dict, save_traces, load_traces

__all__ = [
    "TraceEvent",
    "Trace",
    "TraceSet",
    "WorkloadModel",
    "WorkloadParams",
    "INTERACTION_WORKLOADS",
    "TraceGenerator",
    "UserBehaviorModel",
    "SessionConfig",
    "SessionRegime",
    "SESSION_REGIMES",
    "get_regime",
    "list_regimes",
    "scaled_workloads",
    "trace_to_dict",
    "trace_from_dict",
    "save_traces",
    "load_traces",
]
