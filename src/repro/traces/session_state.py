"""Interaction session state: DOM evolution plus the Table-1 feature window.

Both the trace generator (which synthesises user behaviour) and the PES
predictor (which observes it) need the same view of an ongoing session:

* the current DOM tree, updated by applying each event's Semantic-Tree
  effect (scrolls move the viewport, menu toggles reveal nodes, navigations
  load a fresh document), and
* a sliding window over the five most recent events, from which the
  interaction-dependent features of Table 1 are computed.

Keeping this in the traces layer lets the predictor consume exactly the
same feature definitions the behaviour model is driven by, without the
substrate depending on the core library.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.utils import stable_seed
from repro.webapp.apps import AppProfile
from repro.webapp.dom import DomTree
from repro.webapp.events import EventType, Interaction, interaction_of, POINTER_EVENT_TYPES
from repro.webapp.semantic_tree import SemanticTree

#: Number of recent events considered by the interaction-dependent features.
FEATURE_WINDOW: int = 5

#: Names of the features, in vector order (Table 1).
FEATURE_NAMES: tuple[str, ...] = (
    "clickable_region_fraction",
    "visible_link_fraction",
    "distance_to_previous_click",
    "navigations_in_window",
    "scrolls_in_window",
)


@dataclass(frozen=True)
class ObservedEvent:
    """The slice of an event the feature window needs to remember."""

    event_type: EventType
    navigated: bool
    node_id: str = ""


def document_rng(profile: AppProfile, doc_index: int) -> np.random.Generator:
    """Deterministic RNG for the ``doc_index``-th document of an application.

    Both the trace generator and the PES predictor rebuild the DOM when a
    navigation happens.  Deriving the layout RNG from the application name
    and a document counter guarantees that the two sides observe the same
    sequence of documents, which is what a shared real page would give them.
    """
    return np.random.default_rng(stable_seed(profile.name, doc_index))


@dataclass
class SessionState:
    """Evolving DOM + recent-event window for one interaction session."""

    profile: AppProfile
    dom: DomTree
    semantic: SemanticTree
    doc_index: int = 0
    history: deque[ObservedEvent] = field(default_factory=lambda: deque(maxlen=FEATURE_WINDOW))
    last_navigated: bool = False

    @classmethod
    def fresh(cls, profile: AppProfile) -> "SessionState":
        """Start a new session on a freshly generated document."""
        dom, semantic = profile.build_dom(document_rng(profile, 0))
        return cls(profile=profile, dom=dom, semantic=semantic, doc_index=0)

    # -- features (Table 1) --------------------------------------------------

    def features(self) -> np.ndarray:
        """The five-element feature vector, each component normalised to [0, 1]."""
        clickable = self.dom.clickable_region_fraction()
        links = self.dom.visible_link_fraction()

        distance_to_click = float(FEATURE_WINDOW)
        for distance, observed in enumerate(reversed(self.history), start=1):
            if interaction_of(observed.event_type) is Interaction.TAP:
                distance_to_click = float(distance)
                break

        navigations = sum(1 for o in self.history if o.navigated)
        scrolls = sum(
            1 for o in self.history if interaction_of(o.event_type) is Interaction.MOVE
        )

        return np.array(
            [
                clickable,
                links,
                distance_to_click / FEATURE_WINDOW,
                navigations / FEATURE_WINDOW,
                scrolls / FEATURE_WINDOW,
            ],
            dtype=float,
        )

    # -- DOM-derived candidate events (LNES ingredient) ------------------------

    def available_events(self) -> set[EventType]:
        """Events that the current DOM state allows the user to trigger next.

        After a navigation the only possible next event is the ``load`` of
        the new document; otherwise the candidates are the pointer events
        registered on visible nodes (plus scrolling, which the document root
        always supports).
        """
        if self.last_navigated:
            return {EventType.LOAD}
        visible = self.dom.visible_event_types()
        return {e for e in visible if e in POINTER_EVENT_TYPES}

    # -- state evolution -------------------------------------------------------

    def apply_event(self, event_type: EventType, node_id: str, navigates: bool | None = None) -> bool:
        """Apply one event to the session state.

        Returns whether the event navigated.  When ``navigates`` is given it
        overrides the Semantic-Tree effect (used when replaying recorded
        traces whose ground-truth effect is stored on the event).
        """
        effect = self.semantic.effect_of(node_id, event_type)
        did_navigate = effect.navigates if navigates is None else navigates

        if event_type is EventType.LOAD:
            # The load event of the new document rebuilds the DOM.
            self.doc_index += 1
            self.dom, self.semantic = self.profile.build_dom(document_rng(self.profile, self.doc_index))
            self.last_navigated = False
        elif did_navigate:
            # A navigating tap tears down the document; only the subsequent
            # load event produces the new one.
            self.last_navigated = True
        else:
            effect.apply(self.dom)
            self.last_navigated = False

        self.history.append(ObservedEvent(event_type=event_type, navigated=did_navigate, node_id=node_id))
        return did_navigate

    def reset_document(self) -> None:
        """Force a fresh document (used at session start)."""
        self.doc_index = 0
        self.dom, self.semantic = self.profile.build_dom(document_rng(self.profile, 0))
        self.last_navigated = False
        self.history.clear()

    def clone(self) -> "SessionState":
        """Structured copy used for hypothetical roll-forward during prediction.

        Hand-rolled instead of ``copy.deepcopy`` (which was the single
        largest predictor-side cost): the immutable pieces — the frozen
        :class:`AppProfile`, the frozen ``CallbackEffect`` values, and the
        frozen ``ObservedEvent`` history entries — are shared, while the
        mutable DOM tree is cloned node by node and the Semantic-Tree
        mapping and history window get fresh containers.
        """
        return SessionState(
            profile=self.profile,
            dom=self.dom.clone(),
            semantic=SemanticTree(effects=dict(self.semantic.effects)),
            doc_index=self.doc_index,
            history=deque(self.history, maxlen=FEATURE_WINDOW),
            last_navigated=self.last_navigated,
        )
