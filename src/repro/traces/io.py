"""Trace serialisation: JSON round-tripping for recorded/generated sessions.

The paper persists recorded interaction traces and replays them under each
scheduler; this module provides the equivalent on-disk format so generated
trace sets can be saved once and replayed by every experiment.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.hardware.dvfs import DvfsModel
from repro.traces.trace import Trace, TraceEvent, TraceSet
from repro.utils import write_json_atomic
from repro.webapp.events import EventType

FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    """Convert a trace to a JSON-serialisable dictionary."""
    return {
        "app_name": trace.app_name,
        "user_id": trace.user_id,
        "seed": trace.seed,
        "events": [
            {
                "index": e.index,
                "event_type": e.event_type.value,
                "node_id": e.node_id,
                "arrival_ms": e.arrival_ms,
                "tmem_ms": e.workload.tmem_ms,
                "ndep_mcycles": e.workload.ndep_mcycles,
                "navigates": e.navigates,
            }
            for e in trace.events
        ],
    }


def trace_from_dict(payload: dict[str, Any]) -> Trace:
    """Rebuild a trace from its dictionary form."""
    events = [
        TraceEvent(
            index=int(item["index"]),
            event_type=EventType(item["event_type"]),
            node_id=str(item["node_id"]),
            arrival_ms=float(item["arrival_ms"]),
            workload=DvfsModel(
                tmem_ms=float(item["tmem_ms"]),
                ndep_mcycles=float(item["ndep_mcycles"]),
            ),
            navigates=bool(item["navigates"]),
        )
        for item in payload["events"]
    ]
    seed = payload.get("seed")
    return Trace(
        app_name=str(payload["app_name"]),
        user_id=str(payload["user_id"]),
        events=events,
        seed=int(seed) if seed is not None else None,
    )


def save_traces(traces: TraceSet, path: str | Path) -> None:
    """Write a trace set to a JSON file."""
    payload = {
        "version": FORMAT_VERSION,
        "traces": [trace_to_dict(t) for t in traces],
    }
    # indent=None / no trailing newline: preserve the historical byte-exact
    # format so existing trace files and their hashes stay stable.
    write_json_atomic(payload, path, indent=None, trailing_newline=False)


def load_traces(path: str | Path) -> TraceSet:
    """Read a trace set from a JSON file written by :func:`save_traces`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace file version {version!r}")
    traces = TraceSet()
    for item in payload["traces"]:
        traces.add(trace_from_dict(item))
    return traces
