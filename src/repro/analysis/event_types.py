"""Event categorisation under a reactive scheduler (Fig. 3).

The paper classifies the events observed under EBS into four types to
quantify how much room a proactive scheduler has:

* **Type I** — the event's workload is so high that even the fastest
  configuration cannot meet its QoS target.
* **Type II** — the event could meet its deadline if scheduled in
  isolation, but missed it at runtime because interference from preceding
  events ate its time budget.
* **Type III** — the event met its deadline, but interference forced a
  higher-performance (more energy-hungry) configuration than an isolated
  schedule would have needed.
* **Type IV** — benign: met its deadline without interference.

The categorisation is a property of where the event appeared under a given
scheduling policy, not of the event itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.acmp import AcmpSystem
from repro.hardware.power import PowerTable
from repro.runtime.metrics import EventOutcome, SessionResult
from repro.schedulers.base import enumerate_options
from repro.traces.trace import Trace


class EventCategory(enum.Enum):
    """The four event types of the paper's Fig. 3."""

    TYPE_I = "Type I"
    TYPE_II = "Type II"
    TYPE_III = "Type III"
    TYPE_IV = "Type IV"


@dataclass(frozen=True)
class ClassifiedEvent:
    """One event outcome together with its category."""

    outcome: EventOutcome
    category: EventCategory


def _isolated_best(
    system: AcmpSystem, power_table: PowerTable, trace: Trace, outcome: EventOutcome
):
    """Fastest latency and isolated min-energy option for the event."""
    event = trace[outcome.index]
    options = enumerate_options(system, power_table, event.workload)
    fastest = min(o.latency_ms for o in options)
    feasible = [o for o in options if o.latency_ms <= event.qos_target_ms]
    cheapest_feasible = min(feasible, key=lambda o: o.energy_mj) if feasible else None
    return fastest, cheapest_feasible


def classify_events(
    trace: Trace,
    result: SessionResult,
    system: AcmpSystem,
    power_table: PowerTable,
    *,
    interference_threshold_ms: float = 1.0,
) -> list[ClassifiedEvent]:
    """Classify every event of a replayed session into the four categories."""
    if len(result.outcomes) != len(trace):
        raise ValueError("result does not match the trace (different event counts)")

    classified: list[ClassifiedEvent] = []
    for outcome in result.outcomes:
        fastest_latency, cheapest_feasible = _isolated_best(system, power_table, trace, outcome)
        interfered = outcome.queue_delay_ms > interference_threshold_ms
        if cheapest_feasible is None or fastest_latency > outcome.qos_target_ms:
            category = EventCategory.TYPE_I
        elif outcome.violated:
            category = EventCategory.TYPE_II if interfered else EventCategory.TYPE_IV
            # A violation without interference on a feasible event means the
            # scheduler simply under-provisioned it; the paper's taxonomy
            # attributes those to the scheduler as well, so count them as
            # Type II (they would be fixed by coordination, not by raw speed).
            category = EventCategory.TYPE_II
        elif interfered and cheapest_feasible is not None and (
            outcome.active_energy_mj > cheapest_feasible.energy_mj + 1e-9
        ):
            category = EventCategory.TYPE_III
        else:
            category = EventCategory.TYPE_IV
        classified.append(ClassifiedEvent(outcome=outcome, category=category))
    return classified


def category_distribution(classified: list[ClassifiedEvent]) -> dict[EventCategory, float]:
    """Fraction of events in each category (sums to 1 for non-empty input)."""
    if not classified:
        return {category: 0.0 for category in EventCategory}
    counts = {category: 0 for category in EventCategory}
    for item in classified:
        counts[item.category] += 1
    total = len(classified)
    return {category: counts[category] / total for category in EventCategory}
