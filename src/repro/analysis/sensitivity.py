"""Sensitivity of PES to the confidence threshold (Fig. 14).

The confidence threshold controls the prediction degree: relaxing it lets
the predictor speculate further ahead (larger scheduling window, more
mis-predictions), tightening it shrinks the window until, at 100%, PES
effectively degenerates to EBS.  The sweep replays the same traces under
PES configured with each threshold and reports, per application, the
energy and the QoS-violation reduction normalised to EBS — the same
normalisation the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.pes import PesConfig
from repro.core.predictor.sequence_learner import EventSequenceLearner
from repro.runtime.metrics import aggregate_results
from repro.runtime.simulator import Simulator
from repro.traces.trace import Trace


@dataclass(frozen=True)
class ConfidenceSweepResult:
    """Results for one application at one confidence threshold."""

    app_name: str
    confidence_threshold: float
    energy_vs_ebs: float
    qos_violation_reduction: float
    mean_prediction_degree: float


def sweep_confidence_threshold(
    simulator: Simulator,
    learner: EventSequenceLearner,
    traces: Sequence[Trace],
    thresholds: Sequence[float],
) -> list[ConfidenceSweepResult]:
    """Run the Fig. 14 sweep over ``thresholds`` for the given traces."""
    if not thresholds:
        raise ValueError("at least one threshold is required")
    apps = sorted({t.app_name for t in traces})
    results: list[ConfidenceSweepResult] = []

    ebs_by_app = {
        app: aggregate_results(
            [simulator.run_scheme([t], "EBS")[0] for t in traces if t.app_name == app]
        )
        for app in apps
    }

    for threshold in thresholds:
        config = PesConfig(confidence_threshold=threshold)
        for app in apps:
            app_traces = [t for t in traces if t.app_name == app]
            pes_results = [simulator.run_pes(t, learner, config) for t in app_traces]
            pes_metrics = aggregate_results(pes_results)
            ebs_metrics = ebs_by_app[app]

            energy_vs_ebs = (
                pes_metrics.total_energy_mj / ebs_metrics.total_energy_mj
                if ebs_metrics.total_energy_mj > 0
                else 1.0
            )
            if ebs_metrics.qos_violation_rate > 0:
                reduction = 1.0 - pes_metrics.qos_violation_rate / ebs_metrics.qos_violation_rate
            else:
                reduction = 0.0
            rounds = sum(r.prediction_rounds for r in pes_results)
            predictions = sum(r.predictions_made for r in pes_results)
            degree = predictions / rounds if rounds else 0.0
            results.append(
                ConfidenceSweepResult(
                    app_name=app,
                    confidence_threshold=threshold,
                    energy_vs_ebs=energy_vs_ebs,
                    qos_violation_reduction=reduction,
                    mean_prediction_degree=degree,
                )
            )
    return results
