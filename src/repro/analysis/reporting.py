"""Plain-text reporting helpers for the benchmark and scenario harnesses.

The benchmark modules print the rows/series of each paper figure; these
helpers keep that formatting uniform (fixed-width columns, percentages with
one decimal) so the regenerated artefacts are easy to diff against
EXPERIMENTS.md.  The scenario-matrix subcommand reuses the same table
renderer through :func:`scenario_energy_table` / :func:`scenario_qos_table`,
which turn per-scenario per-scheme aggregates into one row per scenario.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.runtime.metrics import AggregateMetrics


def format_percentage(value: float, *, decimals: int = 1) -> str:
    """Render a fraction as a percentage string, e.g. 0.265 -> '26.5%'."""
    return f"{value * 100:.{decimals}f}%"


def format_percentage_map(values: Mapping[str, float], *, decimals: int = 1) -> str:
    """One 'key: pct' line per entry, preserving insertion order."""
    return "\n".join(f"{key}: {format_percentage(val, decimals=decimals)}" for key, val in values.items())


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    min_width: int = 8,
) -> str:
    """Render a fixed-width text table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    columns = len(headers)
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [
        max(min_width, len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rendered_rows else max(min_width, len(str(headers[i])))
        for i in range(columns)
    ]
    lines = [
        "  ".join(str(headers[i]).ljust(widths[i]) for i in range(columns)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _scheme_columns(rows: Mapping[str, Mapping[str, AggregateMetrics]]) -> list[str]:
    """Scheme names across all scenarios, in first-appearance order."""
    schemes: list[str] = []
    for per_scheme in rows.values():
        for scheme in per_scheme:
            if scheme not in schemes:
                schemes.append(scheme)
    return schemes


def scenario_energy_table(
    rows: Mapping[str, Mapping[str, AggregateMetrics]],
    *,
    baseline: str | None = None,
) -> str:
    """Per-scenario energy of every scheme relative to the baseline scheme.

    ``rows`` maps scenario name -> scheme -> aggregate metrics.  The
    baseline defaults to each scenario's first scheme; a scenario whose
    baseline energy is not positive renders ``n/a`` instead of dividing.
    """
    schemes = _scheme_columns(rows)
    table_rows: list[list[object]] = []
    for scenario, per_scheme in rows.items():
        base_scheme = baseline if baseline is not None else next(iter(per_scheme))
        base = per_scheme.get(base_scheme)
        base_energy = base.total_energy_mj if base is not None else 0.0
        cells: list[object] = [scenario]
        for scheme in schemes:
            metrics = per_scheme.get(scheme)
            if metrics is None or base_energy <= 0:
                cells.append("n/a")
            else:
                cells.append(format_percentage(metrics.total_energy_mj / base_energy))
        table_rows.append(cells)
    return format_table(["scenario"] + [f"{s} energy" for s in schemes], table_rows, min_width=10)


def sweep_energy_table(
    rows: Mapping[str, Mapping[str, AggregateMetrics]],
    *,
    baseline: str | None = None,
) -> str:
    """Per-platform-variant energy across a swept matrix.

    Cells of a platform sweep are named ``variant/regime/mix``; this table
    folds every cell of one variant together (total energy per scheme
    summed over the variant's regimes and mixes) so the platform axis —
    the thing the sweep varies — reads as one row per variant.  Scheme
    columns are relative to the baseline scheme's summed energy; the
    absolute baseline total is kept as its own column so rows remain
    comparable across variants (a throttled variant can win relatively
    while losing absolutely).
    """
    variant_totals: dict[str, dict[str, float]] = {}
    variant_cells: dict[str, int] = {}
    for cell, per_scheme in rows.items():
        variant = cell.split("/", 1)[0]
        totals = variant_totals.setdefault(variant, {})
        variant_cells[variant] = variant_cells.get(variant, 0) + 1
        for scheme, metrics in per_scheme.items():
            totals[scheme] = totals.get(scheme, 0.0) + metrics.total_energy_mj

    schemes = _scheme_columns(rows)
    table_rows: list[list[object]] = []
    for variant, totals in variant_totals.items():
        base_scheme = baseline if baseline is not None else next(iter(totals))
        base_energy = totals.get(base_scheme, 0.0)
        cells: list[object] = [variant, variant_cells[variant]]
        for scheme in schemes:
            total = totals.get(scheme)
            if total is None or base_energy <= 0:
                cells.append("n/a")
            else:
                cells.append(format_percentage(total / base_energy))
        cells.append(f"{base_energy:.0f}" if base_energy > 0 else "n/a")
        table_rows.append(cells)
    headers = (
        ["variant", "cells"]
        + [f"{s} energy" for s in schemes]
        + [f"{baseline if baseline is not None else 'baseline'} (mJ)"]
    )
    return format_table(headers, table_rows, min_width=10)


def sweep_platform_table(specs: Sequence) -> str:
    """What each swept cell's platform actually is after derivation.

    One row per :class:`~repro.scenarios.spec.ScenarioSpec`: the override
    axes (core counts, little ``perf_scale``, thermal curve) and the
    *effective* top frequency after the regime cap and the thermal
    throttle have been applied — the column that shows what a thermal
    curve did to each variant under each regime's heat-up dwell.
    """
    table_rows: list[list[object]] = []
    for spec in specs:
        system = spec.system()
        big = system.big_cluster
        little = system.little_cluster
        table_rows.append(
            [
                spec.name,
                big.core_count,
                little.core_count,
                f"{little.perf_scale:g}",
                spec.thermal if spec.thermal is not None else "-",
                big.max_frequency_mhz,
            ]
        )
    return format_table(
        ["scenario", "big", "little", "perf_scale", "thermal", "top MHz"],
        table_rows,
        min_width=6,
    )


def scenario_thermal_table(results: Sequence) -> str:
    """Per-scenario thermal telemetry of every dynamic-thermal scheme cell.

    ``results`` is a sequence of
    :class:`~repro.scenarios.runner.ScenarioResult`; only cells whose
    aggregates carry a :class:`~repro.runtime.metrics.ThermalAggregate`
    (i.e. ``thermal_mode="dynamic"`` replays) contribute rows.  Returns an
    empty string when no cell tracked thermal state, so callers can print
    the table only when it has something to say.
    """
    table_rows: list[list[object]] = []
    for result in results:
        for scheme, aggregates in result.aggregates.items():
            thermal = getattr(aggregates, "thermal", None)
            if thermal is None:
                continue
            table_rows.append(
                [
                    result.spec.name,
                    scheme,
                    f"{thermal.peak_temperature_c:.1f}",
                    format_percentage(thermal.throttle_residency),
                    format_percentage(thermal.throttle_slowdown),
                ]
            )
    if not table_rows:
        return ""
    return format_table(
        ["scenario", "scheme", "peak C", "throttle res.", "throttle slowdown"],
        table_rows,
        min_width=10,
    )


def scenario_faults_table(results: Sequence) -> str:
    """Per-scenario resilience telemetry of every fault-injected scheme cell.

    ``results`` is a sequence of
    :class:`~repro.scenarios.runner.ScenarioResult`; only cells whose
    aggregates carry a :class:`~repro.runtime.metrics.FaultAggregate`
    (i.e. replays with a non-null fault spec) contribute rows.  Returns an
    empty string when no cell injected faults, so callers can print the
    table only when it has something to say.
    """
    table_rows: list[list[object]] = []
    for result in results:
        for scheme, aggregates in result.aggregates.items():
            faults = getattr(aggregates, "faults", None)
            if faults is None:
                continue
            table_rows.append(
                [
                    result.spec.name,
                    scheme,
                    faults.injected,
                    faults.recovered,
                    faults.battery_injected,
                    faults.battery_recovered,
                    format_percentage(faults.recovery_rate),
                    format_percentage(faults.energy_inflation),
                ]
            )
    if not table_rows:
        return ""
    return format_table(
        [
            "scenario",
            "scheme",
            "injected",
            "recovered",
            "battery inj.",
            "battery rec.",
            "recovery",
            "energy infl.",
        ],
        table_rows,
        min_width=8,
    )


def _na(value: object, render) -> str:
    return "n/a" if value is None else render(value)


def fleet_percentile_table(payload: Mapping) -> str:
    """Population percentiles of a ``FLEET_*.json`` payload, one row per
    (scheme, metric): nearest-rank p50/p95/p99 over the device population.
    ``n/a`` marks metrics no device tracked (e.g. throttle residency of a
    fleet whose every device drew an unthrottled chassis)."""
    table_rows: list[list[object]] = []
    for scheme, block in payload["population"].items():
        for metric, quantiles in block["percentiles"].items():
            table_rows.append(
                [scheme, metric]
                + [_na(quantiles[label], lambda v: f"{v:.3f}") for label in ("p50", "p95", "p99")]
            )
    return format_table(["scheme", "metric", "p50", "p95", "p99"], table_rows, min_width=10)


def fleet_slice_table(payload: Mapping) -> str:
    """Per-slice win/loss table of a ``FLEET_*.json`` payload.

    One row per fleet slice: how many devices it holds, then per scheme
    the win/loss/tie counts against the baseline scheme, the mean
    normalised energy, and the slice's p95 throttle residency — the table
    that answers "which part of the fleet does this scheme help or hurt".
    """
    schemes = list(payload["population"])
    table_rows: list[list[object]] = []
    for label, entry in payload["slices"].items():
        cells: list[object] = [label, entry["n_devices"]]
        for scheme in schemes:
            block = entry["schemes"][scheme]
            cells.append(f"{block['wins']}/{block['losses']}/{block['ties']}")
            cells.append(_na(block["mean_normalised_energy"], format_percentage))
            cells.append(_na(block["throttle_residency"]["p95"], format_percentage))
        table_rows.append(cells)
    headers = ["slice", "devices"]
    for scheme in schemes:
        headers += [f"{scheme} w/l/t", f"{scheme} energy", f"{scheme} p95 thr."]
    return format_table(headers, table_rows, min_width=8)


def fleet_sample_table(devices: Sequence) -> str:
    """What a sampled fleet looks like, one row per
    :class:`~repro.fleet.population.Device` (the ``fleet sample`` view)."""
    table_rows: list[list[object]] = []
    for device in devices:
        table_rows.append(
            [
                device.name,
                device.variant.label,
                device.regime,
                device.mix,
                "+".join(device.apps),
                device.thermal if device.thermal is not None else "-",
                f"{device.ambient_c:g}" if device.ambient_c is not None else "-",
                device.fault if device.fault is not None else "-",
            ]
        )
    return format_table(
        ["device", "platform", "regime", "mix", "apps", "thermal", "amb C", "fault"],
        table_rows,
        min_width=6,
    )


def scenario_qos_table(rows: Mapping[str, Mapping[str, AggregateMetrics]]) -> str:
    """Per-scenario QoS violation rate of every scheme."""
    schemes = _scheme_columns(rows)
    table_rows: list[list[object]] = []
    for scenario, per_scheme in rows.items():
        cells: list[object] = [scenario]
        for scheme in schemes:
            metrics = per_scheme.get(scheme)
            cells.append(
                format_percentage(metrics.qos_violation_rate) if metrics is not None else "n/a"
            )
        table_rows.append(cells)
    return format_table(["scenario"] + [f"{s} QoS viol." for s in schemes], table_rows, min_width=10)
