"""Plain-text reporting helpers for the benchmark harness.

The benchmark modules print the rows/series of each paper figure; these
helpers keep that formatting uniform (fixed-width columns, percentages with
one decimal) so the regenerated artefacts are easy to diff against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_percentage(value: float, *, decimals: int = 1) -> str:
    """Render a fraction as a percentage string, e.g. 0.265 -> '26.5%'."""
    return f"{value * 100:.{decimals}f}%"


def format_percentage_map(values: Mapping[str, float], *, decimals: int = 1) -> str:
    """One 'key: pct' line per entry, preserving insertion order."""
    return "\n".join(f"{key}: {format_percentage(val, decimals=decimals)}" for key, val in values.items())


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    min_width: int = 8,
) -> str:
    """Render a fixed-width text table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    columns = len(headers)
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [
        max(min_width, len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rendered_rows else max(min_width, len(str(headers[i])))
        for i in range(columns)
    ]
    lines = [
        "  ".join(str(headers[i]).ljust(widths[i]) for i in range(columns)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
