"""Pareto analysis of scheduling schemes (Fig. 13).

Each scheme is a point in (QoS violation, normalised energy) space, lower
being better on both axes.  The paper's claim is that PES Pareto-dominates
every existing scheme; :func:`pareto_frontier` and :func:`dominates` make
that claim checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.runtime.metrics import AggregateMetrics


@dataclass(frozen=True)
class ParetoPoint:
    """One scheme's position in the QoS-violation / energy plane."""

    scheme: str
    qos_violation: float
    normalised_energy: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.qos_violation <= 1.0:
            raise ValueError("qos_violation must be a fraction in [0, 1]")
        if self.normalised_energy <= 0:
            raise ValueError("normalised_energy must be positive")


def dominates(a: ParetoPoint, b: ParetoPoint, *, tolerance: float = 1e-9) -> bool:
    """Whether scheme ``a`` Pareto-dominates scheme ``b`` (≤ on both, < on one)."""
    no_worse = (
        a.qos_violation <= b.qos_violation + tolerance
        and a.normalised_energy <= b.normalised_energy + tolerance
    )
    strictly_better = (
        a.qos_violation < b.qos_violation - tolerance
        or a.normalised_energy < b.normalised_energy - tolerance
    )
    return no_worse and strictly_better


def pareto_frontier(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """The subset of points not dominated by any other point."""
    points = list(points)
    frontier = [
        p
        for p in points
        if not any(dominates(other, p) for other in points if other is not p)
    ]
    frontier.sort(key=lambda p: (p.qos_violation, p.normalised_energy))
    return frontier


def points_from_metrics(
    metrics_by_scheme: Mapping[str, AggregateMetrics],
    baseline: str = "Interactive",
) -> list[ParetoPoint]:
    """Build Pareto points from aggregated per-scheme metrics."""
    if baseline not in metrics_by_scheme:
        raise KeyError(f"baseline scheme {baseline!r} missing")
    base_energy = metrics_by_scheme[baseline].total_energy_mj
    if base_energy <= 0:
        raise ValueError("baseline energy must be positive")
    return [
        ParetoPoint(
            scheme=scheme,
            qos_violation=metrics.qos_violation_rate,
            normalised_energy=metrics.total_energy_mj / base_energy,
        )
        for scheme, metrics in metrics_by_scheme.items()
    ]


def non_dominated_schemes(points: Sequence[ParetoPoint]) -> set[str]:
    return {p.scheme for p in pareto_frontier(points)}
