"""Analysis utilities behind the paper's characterisation and evaluation figures."""

from repro.analysis.event_types import EventCategory, classify_events, category_distribution
from repro.analysis.pareto import ParetoPoint, pareto_frontier, dominates
from repro.analysis.sensitivity import ConfidenceSweepResult, sweep_confidence_threshold
from repro.analysis.reporting import (
    format_table,
    format_percentage_map,
    scenario_energy_table,
    scenario_faults_table,
    scenario_qos_table,
)

__all__ = [
    "EventCategory",
    "classify_events",
    "category_distribution",
    "ParetoPoint",
    "pareto_frontier",
    "dominates",
    "ConfidenceSweepResult",
    "sweep_confidence_threshold",
    "format_table",
    "format_percentage_map",
    "scenario_energy_table",
    "scenario_faults_table",
    "scenario_qos_table",
]
