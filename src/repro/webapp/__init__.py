"""Web application substrate: DOM trees, event taxonomy, rendering pipeline.

This package stands in for the Chromium rendering engine and the real
webpages of the paper's benchmark suite.  It provides:

* the DOM event taxonomy with per-interaction QoS targets,
* synthetic DOM trees with event listeners and viewport visibility,
* the Semantic Tree (Accessibility-Tree based) memoisation of callback
  effects used by the predictor's DOM analysis,
* a rendering-pipeline latency model (style → layout → paint → composite,
  VSync-quantised frame submission),
* a catalog of the 18 benchmark applications with per-app characteristics.
"""

from repro.webapp.events import (
    EventType,
    Interaction,
    QOS_TARGETS_MS,
    qos_target_ms,
    interaction_of,
)
from repro.webapp.dom import DomNode, DomTree, Viewport
from repro.webapp.semantic_tree import SemanticTree, CallbackEffect
from repro.webapp.rendering import RenderingPipeline, VSYNC_PERIOD_MS, FrameResult
from repro.webapp.apps import AppProfile, AppCatalog, SEEN_APPS, UNSEEN_APPS

__all__ = [
    "EventType",
    "Interaction",
    "QOS_TARGETS_MS",
    "qos_target_ms",
    "interaction_of",
    "DomNode",
    "DomTree",
    "Viewport",
    "SemanticTree",
    "CallbackEffect",
    "RenderingPipeline",
    "VSYNC_PERIOD_MS",
    "FrameResult",
    "AppProfile",
    "AppCatalog",
    "SEEN_APPS",
    "UNSEEN_APPS",
]
