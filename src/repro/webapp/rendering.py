"""Rendering-pipeline latency model and VSync frame submission.

An event's latency (Fig. 1) is the time from the input being triggered to
the corresponding frame appearing on the display: callback execution, then
the rendering stages (style resolution, layout, paint, composite), then an
idle wait until the next display refresh (VSync at 60 Hz).

The CPU-visible work (callback + rendering stages) is what the DVFS model
scales with frequency; the VSync quantisation adds a frequency-independent
idle tail.  :class:`RenderingPipeline` splits a unit of event work into the
per-stage shares and computes frame-completion/display times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

#: Display refresh period for a 60 Hz mobile panel, in milliseconds.
VSYNC_PERIOD_MS: float = 1000.0 / 60.0

#: Default division of an event's CPU work across pipeline stages.  The
#: callback (JavaScript) dominates, consistent with the paper's observation
#: that the Web runtime's dynamic translation layer is compute heavy.
DEFAULT_STAGE_SHARES: Mapping[str, float] = {
    "callback": 0.55,
    "style": 0.12,
    "layout": 0.15,
    "paint": 0.10,
    "composite": 0.08,
}


@dataclass(frozen=True)
class FrameResult:
    """Timing of a produced frame.

    ``ready_ms`` is when the frame finished compositing; ``display_ms`` is
    when it is actually shown (the next VSync at or after ``ready_ms``).
    """

    start_ms: float
    ready_ms: float
    display_ms: float

    @property
    def idle_wait_ms(self) -> float:
        return self.display_ms - self.ready_ms

    @property
    def total_latency_ms(self) -> float:
        return self.display_ms - self.start_ms


@dataclass(frozen=True)
class RenderingPipeline:
    """Splits event work into pipeline stages and quantises to VSync."""

    stage_shares: Mapping[str, float] = None  # type: ignore[assignment]
    vsync_period_ms: float = VSYNC_PERIOD_MS

    def __post_init__(self) -> None:
        shares = self.stage_shares if self.stage_shares is not None else DEFAULT_STAGE_SHARES
        object.__setattr__(self, "stage_shares", dict(shares))
        total = sum(self.stage_shares.values())
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"stage shares must sum to 1.0, got {total}")
        if any(v < 0 for v in self.stage_shares.values()):
            raise ValueError("stage shares must be non-negative")
        if self.vsync_period_ms <= 0:
            raise ValueError("vsync period must be positive")

    def stage_breakdown_ms(self, cpu_time_ms: float) -> dict[str, float]:
        """Split a total CPU time across the pipeline stages."""
        if cpu_time_ms < 0:
            raise ValueError("cpu_time_ms must be non-negative")
        return {stage: share * cpu_time_ms for stage, share in self.stage_shares.items()}

    def next_vsync_ms(self, time_ms: float) -> float:
        """The first VSync at or after ``time_ms``."""
        if time_ms < 0:
            raise ValueError("time must be non-negative")
        ticks = math.ceil(time_ms / self.vsync_period_ms - 1e-9)
        return ticks * self.vsync_period_ms

    def frame_for(self, start_ms: float, cpu_time_ms: float) -> FrameResult:
        """Produce the frame timing for work starting at ``start_ms``."""
        ready = start_ms + cpu_time_ms
        display = self.next_vsync_ms(ready)
        return FrameResult(start_ms=start_ms, ready_ms=ready, display_ms=display)
