"""DOM tree model with event listeners and viewport visibility.

The predictor's program analysis (Sec. 5.2) walks the part of the DOM tree
that is inside the current viewport and collects the events registered on
visible nodes — the Likely-Next-Event-Set (LNES).  The model here captures
exactly what that analysis needs: a tree of nodes, each with a bounding box,
a set of registered event listeners, and a visibility style.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.webapp.events import EventType


@dataclass(frozen=True)
class Viewport:
    """The visible region of the page in CSS pixels."""

    width: float = 360.0
    height: float = 640.0
    scroll_y: float = 0.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("viewport dimensions must be positive")
        if self.scroll_y < 0:
            raise ValueError("scroll offset must be non-negative")

    def scrolled(self, delta_y: float) -> "Viewport":
        return Viewport(self.width, self.height, max(0.0, self.scroll_y + delta_y))

    @property
    def top(self) -> float:
        return self.scroll_y

    @property
    def bottom(self) -> float:
        return self.scroll_y + self.height

    def intersects(self, y: float, height: float) -> bool:
        """Whether a box spanning [y, y+height) in page coordinates is visible."""
        return y < self.bottom and (y + height) > self.top

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclass
class DomNode:
    """One element of the DOM tree.

    Geometry is simplified to a vertical extent (``y``/``height``) plus a
    width, which is all the viewport-intersection analysis needs, and an
    ``area`` for the clickable-region feature.
    """

    tag: str
    node_id: str
    y: float = 0.0
    height: float = 20.0
    width: float = 360.0
    display: str = "block"
    listeners: set[EventType] = field(default_factory=set)
    is_link: bool = False
    children: list["DomNode"] = field(default_factory=list)
    parent: "DomNode | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.height < 0 or self.width < 0:
            raise ValueError("node dimensions must be non-negative")

    # -- tree construction -------------------------------------------------

    def append_child(self, child: "DomNode") -> "DomNode":
        child.parent = self
        self.children.append(child)
        return child

    # -- queries -----------------------------------------------------------

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def is_displayed(self) -> bool:
        """Whether this node (and all ancestors) have a non-``none`` display."""
        node: DomNode | None = self
        while node is not None:
            if node.display == "none":
                return False
            node = node.parent
        return True

    def is_visible(self, viewport: Viewport) -> bool:
        return self.is_displayed and viewport.intersects(self.y, self.height)

    @property
    def is_clickable(self) -> bool:
        return bool(self.listeners & {EventType.CLICK, EventType.TOUCHSTART, EventType.SUBMIT})

    def walk(self) -> Iterator["DomNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.walk()

    def clone(self) -> "DomNode":
        """Structured deep copy of the subtree rooted at this node.

        Hand-rolled instead of ``copy.deepcopy`` because cloning sits on the
        prediction hot path (one clone per hypothetical roll-forward step).
        The copy owns its listener set and children list; the parent pointer
        of the returned root is left unset.
        """
        copied = DomNode(
            tag=self.tag,
            node_id=self.node_id,
            y=self.y,
            height=self.height,
            width=self.width,
            display=self.display,
            listeners=set(self.listeners),
            is_link=self.is_link,
        )
        for child in self.children:
            copied.append_child(child.clone())
        return copied

    def toggle_display(self) -> None:
        """Flip between ``block`` and ``none`` (the Fig. 7 collapsible menu)."""
        self.display = "none" if self.display == "block" else "block"


class DomTree:
    """A DOM tree plus the page viewport.

    Provides the aggregate queries the predictor features (Table 1) and the
    DOM analysis need: visible-node iteration, clickable-region percentage,
    visible-link percentage, and the set of events registered on visible
    nodes.
    """

    _id_counter = itertools.count()

    def __init__(self, root: DomNode, viewport: Viewport | None = None, page_height: float | None = None):
        self.root = root
        self.viewport = viewport or Viewport()
        self._page_height = page_height

    # -- factory helpers ---------------------------------------------------

    @classmethod
    def new_node(cls, tag: str, **kwargs) -> DomNode:
        """Create a node with an auto-assigned unique id."""
        node_id = kwargs.pop("node_id", f"{tag}-{next(cls._id_counter)}")
        return DomNode(tag=tag, node_id=node_id, **kwargs)

    # -- traversal ---------------------------------------------------------

    def walk(self) -> Iterator[DomNode]:
        return self.root.walk()

    def visible_nodes(self) -> Iterator[DomNode]:
        for node in self.walk():
            if node.is_visible(self.viewport):
                yield node

    def find(self, node_id: str) -> DomNode:
        for node in self.walk():
            if node.node_id == node_id:
                return node
        raise KeyError(f"no DOM node with id {node_id!r}")

    def find_all(self, predicate: Callable[[DomNode], bool]) -> list[DomNode]:
        return [node for node in self.walk() if predicate(node)]

    # -- aggregate features (Table 1, application-inherent) -----------------

    def clickable_region_fraction(self) -> float:
        """Fraction of the viewport area covered by visible clickable nodes."""
        clickable_area = sum(n.area for n in self.visible_nodes() if n.is_clickable)
        return min(1.0, clickable_area / self.viewport.area)

    def visible_link_fraction(self) -> float:
        """Fraction of visible nodes that are hyperlinks."""
        visible = list(self.visible_nodes())
        if not visible:
            return 0.0
        return sum(1 for n in visible if n.is_link) / len(visible)

    def visible_event_types(self) -> set[EventType]:
        """Events registered on nodes inside the viewport (LNES ingredient)."""
        events: set[EventType] = set()
        for node in self.visible_nodes():
            events |= node.listeners
        return events

    def clone(self) -> "DomTree":
        """Independent copy of the tree (viewport is immutable and shared)."""
        return DomTree(self.root.clone(), viewport=self.viewport, page_height=self._page_height)

    # -- mutation ----------------------------------------------------------

    def scroll(self, delta_y: float) -> None:
        """Scroll the viewport, clamped to the page height when known."""
        viewport = self.viewport.scrolled(delta_y)
        if self._page_height is not None:
            max_scroll = max(0.0, self._page_height - viewport.height)
            viewport = Viewport(viewport.width, viewport.height, min(viewport.scroll_y, max_scroll))
        self.viewport = viewport

    @property
    def page_height(self) -> float:
        if self._page_height is not None:
            return self._page_height
        return max((n.y + n.height for n in self.walk()), default=self.viewport.height)
