"""Catalog of the 18 benchmark applications.

The paper evaluates 12 "seen" applications (used for characterisation and
predictor training) plus 6 "unseen" applications (used only for evaluation,
to test generalisation).  The real pages are not available offline, so each
application is modelled by an :class:`AppProfile` whose parameters control

* the synthetic DOM / Semantic Tree the page exposes (clickable density,
  link density, number of content sections, collapsible menus),
* the user-behaviour model that drives trace generation (how predictable
  interaction sequences are), and
* the per-event compute workload (how heavy callbacks and rendering are).

The parameters are chosen so the qualitative spread reported in the paper is
preserved: e.g. ``slashdot`` (few clickable regions) is highly predictable
while ``google`` and ``amazon`` (dense, clickable pages) are harder; ``sina``
has many compute-light events; news pages like ``cnn`` carry heavy taps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.utils import stable_seed

from repro.webapp.dom import DomNode, DomTree, Viewport
from repro.webapp.events import EventType
from repro.webapp.semantic_tree import CallbackEffect, EffectKind, SemanticTree

#: The 12 applications used for characterisation and predictor training.
SEEN_APPS: tuple[str, ...] = (
    "163",
    "msn",
    "slashdot",
    "youtube",
    "google",
    "amazon",
    "ebay",
    "sina",
    "espn",
    "bbc",
    "cnn",
    "twitter",
)

#: The 6 applications held out to evaluate generalisation.
UNSEEN_APPS: tuple[str, ...] = (
    "yahoo",
    "nytimes",
    "stackoverflow",
    "taobao",
    "tmall",
    "jd",
)


@dataclass(frozen=True)
class AppProfile:
    """Static description of one benchmark application.

    Parameters
    ----------
    name:
        Application name (matches the paper's x-axis labels).
    seen:
        Whether the app belongs to the training (seen) set.
    clickable_density:
        Fraction of page elements that carry tap listeners; drives both the
        clickable-region feature and how hard the next tap target is to
        predict.
    link_density:
        Fraction of visible elements that are hyperlinks.
    behaviour_entropy:
        Randomness of the user-behaviour model in [0, 1]; higher values make
        interaction sequences less predictable.
    workload_scale:
        Multiplier on the baseline per-event compute workload.
    heavy_tap_fraction:
        Fraction of tap events whose callbacks are so heavy that even the
        fastest configuration cannot meet the QoS target (Type I events).
    sections:
        Number of content sections on the page (drives DOM size).
    menus:
        Number of collapsible menus (drives Semantic-Tree effects).
    """

    name: str
    seen: bool
    clickable_density: float
    link_density: float
    behaviour_entropy: float
    workload_scale: float
    heavy_tap_fraction: float
    sections: int = 12
    menus: int = 2

    def __post_init__(self) -> None:
        for attr in ("clickable_density", "link_density", "behaviour_entropy", "heavy_tap_fraction"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.workload_scale <= 0:
            raise ValueError("workload_scale must be positive")
        if self.sections <= 0 or self.menus < 0:
            raise ValueError("sections must be positive and menus non-negative")

    # -- DOM construction ----------------------------------------------------

    def build_dom(self, rng: np.random.Generator | None = None) -> tuple[DomTree, SemanticTree]:
        """Build the app's synthetic DOM tree and Semantic Tree.

        The layout is deterministic given the profile and the RNG seed: a
        header with navigation links, ``sections`` content blocks whose
        elements are clickable/linked according to the densities, ``menus``
        collapsible menus whose toggle effects are memoised in the Semantic
        Tree, and a form with a submit button.
        """
        rng = rng or np.random.default_rng(stable_seed(self.name))
        semantic = SemanticTree()
        viewport = Viewport(width=360.0, height=640.0)

        root = DomNode(tag="body", node_id=f"{self.name}-body", y=0.0, height=0.0, width=360.0)
        y = 0.0

        # Header / navigation bar with links that navigate.
        header = root.append_child(
            DomNode(tag="header", node_id=f"{self.name}-header", y=y, height=60.0, width=360.0)
        )
        for i in range(4):
            link = header.append_child(
                DomNode(
                    tag="a",
                    node_id=f"{self.name}-nav-{i}",
                    y=y + 10.0,
                    height=40.0,
                    width=80.0,
                    is_link=True,
                    listeners={EventType.CLICK},
                )
            )
            semantic.register(
                link.node_id, EventType.CLICK, CallbackEffect(kind=EffectKind.NAVIGATE, navigates=True)
            )
        y += 70.0

        # Collapsible menus (Fig. 7): a button toggles a hidden submenu.
        for m in range(self.menus):
            button = root.append_child(
                DomNode(
                    tag="button",
                    node_id=f"{self.name}-menu-btn-{m}",
                    y=y,
                    height=44.0,
                    width=360.0,
                    listeners={EventType.CLICK, EventType.TOUCHSTART},
                )
            )
            submenu = root.append_child(
                DomNode(
                    tag="div",
                    node_id=f"{self.name}-menu-{m}",
                    y=y + 44.0,
                    height=120.0,
                    width=360.0,
                    display="none",
                )
            )
            for item in range(3):
                submenu.append_child(
                    DomNode(
                        tag="a",
                        node_id=f"{self.name}-menu-{m}-item-{item}",
                        y=y + 44.0 + item * 40.0,
                        height=40.0,
                        width=360.0,
                        is_link=True,
                        listeners={EventType.CLICK},
                    )
                )
            effect = CallbackEffect(kind=EffectKind.TOGGLE_DISPLAY, target_node_ids=(submenu.node_id,))
            semantic.register(button.node_id, EventType.CLICK, effect)
            semantic.register(button.node_id, EventType.TOUCHSTART, effect)
            y += 54.0

        # Content sections: elements are clickable / links per densities.
        for s in range(self.sections):
            section = root.append_child(
                DomNode(tag="section", node_id=f"{self.name}-sec-{s}", y=y, height=0.0, width=360.0)
            )
            section_height = 0.0
            for e in range(5):
                height = float(rng.integers(30, 90))
                is_clickable = bool(rng.random() < self.clickable_density)
                is_link = bool(rng.random() < self.link_density)
                listeners: set[EventType] = set()
                if is_clickable:
                    listeners.add(EventType.CLICK)
                    listeners.add(EventType.TOUCHSTART)
                node = section.append_child(
                    DomNode(
                        tag="div",
                        node_id=f"{self.name}-sec-{s}-el-{e}",
                        y=y + section_height,
                        height=height,
                        width=float(rng.integers(120, 361)),
                        is_link=is_link,
                        listeners=listeners,
                    )
                )
                if is_link:
                    node.listeners.add(EventType.CLICK)
                    semantic.register(
                        node.node_id, EventType.CLICK, CallbackEffect(kind=EffectKind.NAVIGATE, navigates=True)
                    )
                section_height += height
            section.height = section_height
            y += section_height + 10.0

        # A form with a submit button near the bottom of the page.
        form = root.append_child(
            DomNode(tag="form", node_id=f"{self.name}-form", y=y, height=100.0, width=360.0)
        )
        form.append_child(
            DomNode(
                tag="input",
                node_id=f"{self.name}-form-field",
                y=y,
                height=44.0,
                width=300.0,
                listeners={EventType.CLICK},
            )
        )
        submit = form.append_child(
            DomNode(
                tag="button",
                node_id=f"{self.name}-form-submit",
                y=y + 50.0,
                height=44.0,
                width=140.0,
                listeners={EventType.CLICK, EventType.SUBMIT},
            )
        )
        semantic.register(
            submit.node_id, EventType.SUBMIT, CallbackEffect(kind=EffectKind.NAVIGATE, navigates=True)
        )
        y += 110.0

        # The document root scrolls; register move listeners on the body.
        root.listeners |= {EventType.SCROLL, EventType.TOUCHMOVE}
        root.height = y
        semantic.register(root.node_id, EventType.SCROLL, CallbackEffect(kind=EffectKind.SCROLL_BY, scroll_delta_y=320.0))
        semantic.register(root.node_id, EventType.TOUCHMOVE, CallbackEffect(kind=EffectKind.SCROLL_BY, scroll_delta_y=160.0))

        tree = DomTree(root=root, viewport=viewport, page_height=y)
        return tree, semantic


def _default_profiles() -> dict[str, AppProfile]:
    """Hand-tuned profiles for the 18 benchmark applications."""
    spec: dict[str, tuple[bool, float, float, float, float, float, int, int]] = {
        # name: (seen, clickable, link, entropy, workload, heavy_tap, sections, menus)
        "163": (True, 0.40, 0.45, 0.07, 1.10, 0.10, 14, 2),
        "msn": (True, 0.35, 0.40, 0.07, 1.05, 0.09, 13, 2),
        "slashdot": (True, 0.18, 0.30, 0.03, 0.90, 0.06, 10, 1),
        "youtube": (True, 0.45, 0.35, 0.09, 1.25, 0.12, 12, 2),
        "google": (True, 0.55, 0.50, 0.16, 0.95, 0.08, 8, 1),
        "amazon": (True, 0.60, 0.48, 0.13, 1.20, 0.12, 16, 3),
        "ebay": (True, 0.52, 0.42, 0.10, 1.15, 0.11, 15, 3),
        "sina": (True, 0.38, 0.44, 0.06, 0.70, 0.05, 14, 2),
        "espn": (True, 0.36, 0.40, 0.08, 1.10, 0.10, 12, 2),
        "bbc": (True, 0.30, 0.38, 0.06, 1.05, 0.09, 12, 2),
        "cnn": (True, 0.34, 0.42, 0.08, 1.30, 0.14, 14, 2),
        "twitter": (True, 0.42, 0.36, 0.09, 1.00, 0.09, 12, 2),
        "yahoo": (False, 0.38, 0.42, 0.09, 1.08, 0.10, 13, 2),
        "nytimes": (False, 0.28, 0.40, 0.08, 1.20, 0.12, 14, 2),
        "stackoverflow": (False, 0.32, 0.46, 0.06, 0.95, 0.07, 12, 1),
        "taobao": (False, 0.58, 0.46, 0.12, 1.22, 0.12, 16, 3),
        "tmall": (False, 0.56, 0.44, 0.11, 1.18, 0.11, 15, 3),
        "jd": (False, 0.54, 0.43, 0.10, 1.15, 0.11, 15, 3),
    }
    profiles = {}
    for name, (seen, clickable, link, entropy, workload, heavy, sections, menus) in spec.items():
        profiles[name] = AppProfile(
            name=name,
            seen=seen,
            clickable_density=clickable,
            link_density=link,
            behaviour_entropy=entropy,
            workload_scale=workload,
            heavy_tap_fraction=heavy,
            sections=sections,
            menus=menus,
        )
    return profiles


@dataclass
class AppCatalog:
    """Registry of benchmark application profiles."""

    profiles: dict[str, AppProfile] = field(default_factory=_default_profiles)

    def get(self, name: str) -> AppProfile:
        try:
            return self.profiles[name]
        except KeyError:
            raise KeyError(f"unknown application {name!r}") from None

    def seen(self) -> list[AppProfile]:
        return [p for p in self.profiles.values() if p.seen]

    def unseen(self) -> list[AppProfile]:
        return [p for p in self.profiles.values() if not p.seen]

    def all(self) -> list[AppProfile]:
        return list(self.profiles.values())

    def names(self) -> list[str]:
        return list(self.profiles)

    def __iter__(self) -> Iterator[AppProfile]:
        return iter(self.profiles.values())

    def __len__(self) -> int:
        return len(self.profiles)

    def add(self, profile: AppProfile) -> None:
        if profile.name in self.profiles:
            raise ValueError(f"application {profile.name!r} already registered")
        self.profiles[profile.name] = profile
