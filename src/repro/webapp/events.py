"""DOM event taxonomy, user interactions, and QoS targets.

The paper studies three primitive user interactions — *load*, *tap*, and
*move* — with QoS targets of 3 s, 300 ms, and 33 ms respectively, and notes
that different DOM event types manifest the same interaction (e.g. both
``click`` and ``touchstart`` are "tap").
"""

from __future__ import annotations

import enum
from typing import Mapping


class Interaction(enum.Enum):
    """Primitive user interaction class with an associated QoS target."""

    LOAD = "load"
    TAP = "tap"
    MOVE = "move"


class EventType(enum.Enum):
    """DOM-level event types observed in interaction traces."""

    LOAD = "load"
    CLICK = "click"
    TOUCHSTART = "touchstart"
    SUBMIT = "submit"
    TOUCHMOVE = "touchmove"
    SCROLL = "scroll"

    @property
    def interaction(self) -> Interaction:
        return _EVENT_TO_INTERACTION[self]


_EVENT_TO_INTERACTION: Mapping[EventType, Interaction] = {
    EventType.LOAD: Interaction.LOAD,
    EventType.CLICK: Interaction.TAP,
    EventType.TOUCHSTART: Interaction.TAP,
    EventType.SUBMIT: Interaction.TAP,
    EventType.TOUCHMOVE: Interaction.MOVE,
    EventType.SCROLL: Interaction.MOVE,
}

#: QoS targets (deadlines) per interaction, in milliseconds [Zhu et al.].
QOS_TARGETS_MS: Mapping[Interaction, float] = {
    Interaction.LOAD: 3000.0,
    Interaction.TAP: 300.0,
    Interaction.MOVE: 33.0,
}


def interaction_of(event_type: EventType) -> Interaction:
    """Map a DOM event type to its primitive interaction class."""
    return _EVENT_TO_INTERACTION[event_type]


def qos_target_ms(event_type: EventType) -> float:
    """QoS target (deadline) for a DOM event type, in milliseconds."""
    return QOS_TARGETS_MS[interaction_of(event_type)]


#: Event types a user can trigger through pointer input (i.e. excluding the
#: navigation-driven ``load``); used by the DOM analysis to build the
#: Likely-Next-Event-Set.
POINTER_EVENT_TYPES: tuple[EventType, ...] = (
    EventType.CLICK,
    EventType.TOUCHSTART,
    EventType.SUBMIT,
    EventType.TOUCHMOVE,
    EventType.SCROLL,
)
