"""Semantic Tree: memoised callback effects for static DOM-state analysis.

The challenge addressed in Sec. 5.2/5.5 of the paper is that an event's
callback may mutate the visible DOM (e.g. clicking a button expands a menu),
which changes the Likely-Next-Event-Set of the *following* event.  Fully
evaluating callbacks would defeat the purpose of scheduling several events
ahead, so the paper piggybacks on the Accessibility Tree: during parsing it
memoises, for each interactive node, which other nodes its callback toggles.
The DOM analyser can then *statically* derive the post-callback DOM state.

:class:`SemanticTree` is that memoisation: a mapping from (node, event type)
to a declarative :class:`CallbackEffect` describing the DOM mutation, which
can be applied to (a copy of) the tree without running any JavaScript.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.webapp.dom import DomTree
from repro.webapp.events import EventType


class EffectKind(enum.Enum):
    """The kinds of DOM mutations the Semantic Tree can describe."""

    NONE = "none"
    TOGGLE_DISPLAY = "toggle_display"
    SHOW = "show"
    HIDE = "hide"
    SCROLL_BY = "scroll_by"
    NAVIGATE = "navigate"


@dataclass(frozen=True)
class CallbackEffect:
    """Declarative description of what an event callback does to the DOM.

    ``target_node_ids`` lists the nodes whose display is affected;
    ``scroll_delta_y`` is used by scroll/move effects; ``navigates`` marks
    callbacks that replace the whole document (page navigation).
    """

    kind: EffectKind = EffectKind.NONE
    target_node_ids: tuple[str, ...] = ()
    scroll_delta_y: float = 0.0
    navigates: bool = False

    def apply(self, tree: DomTree) -> None:
        """Apply this effect to ``tree`` in place (static re-evaluation)."""
        if self.kind is EffectKind.NONE:
            return
        if self.kind is EffectKind.SCROLL_BY:
            tree.scroll(self.scroll_delta_y)
            return
        if self.kind is EffectKind.NAVIGATE:
            # Navigation resets the scroll position; the new document is
            # modelled by the application profile regenerating its DOM.
            tree.scroll(-tree.viewport.scroll_y)
            return
        for node_id in self.target_node_ids:
            node = tree.find(node_id)
            if self.kind is EffectKind.TOGGLE_DISPLAY:
                node.toggle_display()
            elif self.kind is EffectKind.SHOW:
                node.display = "block"
            elif self.kind is EffectKind.HIDE:
                node.display = "none"


@dataclass
class SemanticTree:
    """Accessibility-Tree-backed memoisation of callback effects.

    Keys are ``(node_id, event_type)`` pairs.  ``effect_of`` returns a no-op
    effect when nothing is registered, mirroring callbacks whose effects the
    analysis cannot (or need not) model.
    """

    effects: dict[tuple[str, EventType], CallbackEffect] = field(default_factory=dict)

    def register(self, node_id: str, event_type: EventType, effect: CallbackEffect) -> None:
        self.effects[(node_id, event_type)] = effect

    def effect_of(self, node_id: str, event_type: EventType) -> CallbackEffect:
        return self.effects.get((node_id, event_type), CallbackEffect())

    def has_effect(self, node_id: str, event_type: EventType) -> bool:
        return (node_id, event_type) in self.effects

    def __len__(self) -> int:
        return len(self.effects)
