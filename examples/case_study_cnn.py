#!/usr/bin/env python3
"""The Fig. 2 case study: a four-event cnn.com burst under four schedulers.

Rebuilds the paper's motivating example — a tap with slack (E1), an
inherently heavy tap (E2), and two follow-up events squeezed by the
interference (E3, E4) — and prints the per-event timeline under the OS
governor (Interactive), EBS, PES, and the oracle.
"""

from __future__ import annotations

from repro import (
    AppCatalog,
    DvfsModel,
    EbsScheduler,
    EventType,
    InteractiveGovernor,
    PredictorTrainer,
    Simulator,
    TraceGenerator,
)
from repro.traces.trace import Trace, TraceEvent


def build_case_study() -> Trace:
    events = [
        TraceEvent(0, EventType.CLICK, "cnn-menu-btn-0", 0.0, DvfsModel(15.0, 160.0)),
        TraceEvent(1, EventType.CLICK, "cnn-sec-0-el-0", 400.0, DvfsModel(40.0, 520.0)),
        TraceEvent(2, EventType.TOUCHSTART, "cnn-sec-0-el-1", 780.0, DvfsModel(15.0, 200.0)),
        TraceEvent(3, EventType.SCROLL, "cnn-body", 1150.0, DvfsModel(4.0, 24.0)),
    ]
    return Trace(app_name="cnn", user_id="fig2-case-study", events=events)


def main() -> None:
    catalog = AppCatalog()
    generator = TraceGenerator(catalog=catalog)
    training = generator.generate_many([p.name for p in catalog.seen()], traces_per_app=4, base_seed=0)
    learner = PredictorTrainer(catalog=catalog).train(training).learner

    simulator = Simulator(catalog=catalog)
    trace = build_case_study()

    results = {
        "Interactive (OS)": simulator.run_reactive(trace, InteractiveGovernor()),
        "EBS": simulator.run_reactive(trace, EbsScheduler()),
        "PES": simulator.run_pes(trace, learner),
        "Oracle": simulator.run_oracle(trace),
    }

    for scheme, result in results.items():
        print(f"\n=== {scheme} ===")
        print(f"{'event':<8} {'arrival':>8} {'start':>8} {'shown':>8} {'latency':>8} {'target':>7} {'config':<18} miss?")
        for event, outcome in zip(trace, result.outcomes):
            print(
                f"E{event.index + 1:<7} {event.arrival_ms:>8.0f} {outcome.start_ms:>8.0f} "
                f"{outcome.display_ms:>8.0f} {outcome.latency_ms:>8.0f} {outcome.qos_target_ms:>7.0f} "
                f"{outcome.config_label:<18} {'MISS' if outcome.violated else 'ok'}"
            )
        print(
            f"total energy {result.total_energy_mj:.0f} mJ, "
            f"{result.violations} QoS violation(s)"
        )

    interactive = results["Interactive (OS)"]
    oracle = results["Oracle"]
    print(
        f"\nOracle removes all {interactive.violations} violation(s) of the OS governor and uses "
        f"{(1 - oracle.total_energy_mj / interactive.total_energy_mj):.0%} less energy — the "
        "coordination opportunity PES exploits by predicting E2-E4 ahead of time."
    )


if __name__ == "__main__":
    main()
