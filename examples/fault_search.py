#!/usr/bin/env python3
"""Adversarial fault search: find the spec that hurts the most per budget.

PR 6 made wrongness a swept axis — named fault presets crossed into the
scenario matrix.  The search driver (``repro.faults.search``) makes it an
*optimised* one: random init + hill-climb over the fault-spec knobs (the
per-reading rates, the Gilbert-Elliott burst shape they share, and the
battery-rail magnitudes) under a **fault budget** — the summed stationary
effective rate mass, so a bursty 5% rate honestly costs more than a flat
one.  This example:

1. runs a small search on the ``recovery_collapse`` target (maximise the
   fraction of injected faults the schemes fail to absorb) and prints the
   winning spec's knobs,
2. repeats the search at increasing fault budgets and plots (in text) the
   **degradation frontier** — the worst achievable score as a function of
   how much fault mass the adversary is allowed to spend,
3. shows the journal-backed resumability contract: the same search with a
   warm shard journal re-simulates nothing.

Usage:
    python examples/fault_search.py [budget_evals]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.faults.search import run_search
from repro.scenarios import ScenarioRunner
from repro.scenarios.checkpoint import ShardJournal


def _bar(value: float, scale: float = 50.0) -> str:
    return "#" * max(1, round(value * scale))


def search_once(runner: ScenarioRunner, budget_evals: int) -> None:
    print("=== adversarial search: recovery_collapse, budget 0.6 ===")
    report = run_search(
        "recovery_collapse",
        budget_evals=budget_evals,
        seed=7,
        runner=runner,
        progress=lambda message: print(f"  {message}"),
    )
    best = report["best"]
    print(f"\nworst case found: {best['name']}  score {best['score']:.3f} "
          f"(cost {best['cost']:.3f}/{report['budget']})")
    print("knobs of the winning spec:")
    for category, block in best["spec"].items():
        if isinstance(block, dict):
            knobs = ", ".join(
                f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
                for key, value in block.items()
                if not isinstance(value, dict)
            )
            print(f"  {category:<10} {knobs}")


def degradation_frontier(runner: ScenarioRunner, budget_evals: int) -> None:
    print("\n=== degradation frontier: worst score vs fault budget ===")
    print("(how much damage can an adversary do per unit of fault mass?)\n")
    for budget in (0.1, 0.2, 0.4, 0.8):
        report = run_search(
            "recovery_collapse",
            budget=budget,
            budget_evals=budget_evals,
            seed=7,
            runner=runner,
        )
        score = report["best"]["score"]
        unrecovered = sum(
            summary["injected"] - summary["recovered"]
            for summary in report["best"]["metrics"].values()
        )
        print(
            f"  budget {budget:>4.1f}  unrecovered {score * 100:5.1f}% "
            f"({unrecovered:>4.0f} faults)  {_bar(score)}"
        )
    print("\nThe *fraction* unrecovered does not grow with budget — a tiny")
    print("budget spent purely on unrecoverable seams already collapses the")
    print("rate — but the *absolute* number of unabsorbed faults does: more")
    print("fault mass means more damage, even as the ratio saturates.")


def warm_resume(runner: ScenarioRunner, budget_evals: int) -> None:
    print("\n=== shard-journal resume: a finished search replays for free ===")
    with tempfile.TemporaryDirectory() as tmp:
        journal = ShardJournal(Path(tmp) / "search.journal")
        run_search(
            "recovery_collapse", budget_evals=budget_evals, seed=7,
            runner=runner, journal=journal,
        )
        # Second run resumes from the complete journal: every shard and
        # candidate summary is served from disk, byte-identical.
        report = run_search(
            "recovery_collapse", budget_evals=budget_evals, seed=7,
            runner=runner, journal=journal, resume=True,
        )
        print(f"  resumed search log: {len(report['candidates'])} candidates, "
              f"best {report['best']['score']:.3f} — no shard re-simulated")


def main() -> int:
    budget_evals = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    runner = ScenarioRunner(jobs=1)
    search_once(runner, budget_evals)
    degradation_frontier(runner, budget_evals)
    warm_resume(runner, budget_evals)
    return 0


if __name__ == "__main__":
    sys.exit(main())
