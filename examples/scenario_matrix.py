#!/usr/bin/env python3
"""Scenario-matrix walkthrough: breadth evaluation beyond the default workload.

Shows the three ways to use ``repro.scenarios``:

1. run a curated built-in scenario,
2. expand and run a named matrix (cross-product of platform x regime x mix),
3. declare a custom scenario + matrix from scratch, including a
   low-battery frequency cap and a custom PES tuning.

Usage:
    python examples/scenario_matrix.py [jobs]

``jobs`` defaults to 1 (serial); any value produces bit-identical
aggregates, only wall-clock changes.

For sweeping platform *parameters* (core counts, little-cluster IPC,
thermal throttling curves) see ``examples/platform_sweep.py``.
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import scenario_energy_table, scenario_qos_table
from repro.core.pes import PesConfig
from repro.scenarios import (
    ScenarioMatrix,
    ScenarioRunner,
    ScenarioSpec,
    get_matrix,
    get_scenario,
    results_to_rows,
)


def tables(results) -> str:
    rows = results_to_rows(results)
    return scenario_energy_table(rows) + "\n\n" + scenario_qos_table(rows)


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    runner = ScenarioRunner(jobs=jobs)

    # 1. One curated scenario: the battery-saver regime.  The regime caps
    #    every cluster at 1.1 GHz, so the schedulers plan over a smaller
    #    configuration space.
    print("=== built-in scenario: low_battery ===")
    results = runner.run([get_scenario("low_battery")])
    print(tables(results))

    # 2. A named matrix: both platforms x three regimes on the core mix.
    #    All (scenario x scheme x trace) jobs share one worker pool.
    print("\n=== named matrix: default ===")
    results = runner.run(get_matrix("default").expand())
    print(tables(results))

    # 3. A custom matrix: sweep two PES tunings against an explicit app
    #    list under the bursty flash-crowd regime.
    print("\n=== custom matrix: PES tuning under flash crowds ===")
    custom = ScenarioMatrix(
        name="pes_tuning",
        platforms=("exynos5410",),
        regimes=("flash_crowd",),
        app_mixes=("news",),
        schemes=("Interactive", "PES"),
        pes_configs=(
            PesConfig(),
            PesConfig(confidence_threshold=0.85, max_prediction_degree=6),
        ),
    )
    results = runner.run(custom.expand())
    print(tables(results))

    # Scenarios are plain declarative objects: build one directly when a
    # single cell is all you need.
    spec = ScenarioSpec(
        name="my_cell",
        platform="tegra_parker",
        regime="marathon",
        apps=("cnn", "taobao"),
        schemes=("Interactive", "EBS"),
        traces_per_app=1,
    )
    print("\n=== single custom cell ===")
    print(tables(runner.run([spec])))


if __name__ == "__main__":
    main()
