#!/usr/bin/env python3
"""Quickstart: generate a session, train the predictor, compare schedulers.

Runs in well under a minute and prints, for one cnn.com session, the energy
and QoS of the Android Interactive governor, EBS, PES, and the oracle.
"""

from __future__ import annotations

from repro import (
    AppCatalog,
    EbsScheduler,
    InteractiveGovernor,
    PredictorTrainer,
    Simulator,
    TraceGenerator,
)


def main() -> None:
    catalog = AppCatalog()
    generator = TraceGenerator(catalog=catalog)

    # 1. Train the event predictor on sessions from the 12 "seen" apps.
    training = generator.generate_many([p.name for p in catalog.seen()], traces_per_app=4, base_seed=0)
    learner = PredictorTrainer(catalog=catalog).train(training).learner

    # 2. Generate a fresh user session (a different "user" than training).
    trace = generator.generate("cnn", seed=123_456)
    print(f"Session: {len(trace)} events over {trace.duration_ms / 1000:.0f} s on {trace.app_name}")

    # 3. Replay it under each scheduler on the Exynos 5410 model.
    simulator = Simulator(catalog=catalog)
    results = {
        "Interactive": simulator.run_reactive(trace, InteractiveGovernor()),
        "EBS": simulator.run_reactive(trace, EbsScheduler()),
        "PES": simulator.run_pes(trace, learner),
        "Oracle": simulator.run_oracle(trace),
    }

    # 4. Report.
    base = results["Interactive"].total_energy_mj
    print(f"{'scheme':<12} {'energy (mJ)':>12} {'norm.':>7} {'QoS violations':>15}")
    for name, result in results.items():
        print(
            f"{name:<12} {result.total_energy_mj:>12.0f} {result.total_energy_mj / base:>7.2f} "
            f"{result.violations:>6d} / {result.n_events:<3d} ({result.qos_violation_rate:.0%})"
        )
    pes = results["PES"]
    print(
        f"\nPES predicted {pes.commits + pes.mispredictions} events online, "
        f"{pes.commits} correctly ({pes.prediction_accuracy:.0%} accuracy), "
        f"wasting {pes.wasted_time_ms:.0f} ms of speculative work."
    )


if __name__ == "__main__":
    main()
