#!/usr/bin/env python3
"""Train the event predictor and reproduce the Fig. 8 accuracy study.

Generates training sessions for the 12 seen applications, fits the
logistic event-sequence model, evaluates next-event prediction accuracy on
fresh sessions of all 18 applications (seen and unseen), and reports the
effect of disabling the DOM analysis (the Sec. 6.5 ablation).  Also
demonstrates persisting the generated traces to disk for later replay.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import AppCatalog, PredictorTrainer, TraceGenerator, evaluate_accuracy, load_traces, save_traces
from repro.webapp.apps import SEEN_APPS, UNSEEN_APPS


def main() -> None:
    catalog = AppCatalog()
    generator = TraceGenerator(catalog=catalog)

    print("Recording training sessions (12 seen applications, 8 users each)...")
    training = generator.generate_many(list(SEEN_APPS), traces_per_app=8, base_seed=0)
    print(f"  {len(training)} sessions, {training.total_events} events")

    # Persist and reload, as the runtime would with recorded traces.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "training_traces.json"
        save_traces(training, path)
        training = load_traces(path)
        print(f"  round-tripped through {path.name} ({path.stat().st_size / 1024:.0f} KiB)")

    print("Training the logistic event-sequence model...")
    trainer = PredictorTrainer(catalog=catalog)
    result = trainer.train(training)
    print(f"  {result.n_samples} samples; per-class counts: {result.class_counts}")

    print("Evaluating on fresh sessions from all 18 applications...")
    evaluation = generator.generate_many(list(SEEN_APPS) + list(UNSEEN_APPS), traces_per_app=2, base_seed=900_000)
    with_dom = evaluate_accuracy(result.learner, evaluation, catalog, use_dom_analysis=True)
    without_dom = evaluate_accuracy(result.learner, evaluation, catalog, use_dom_analysis=False)

    print(f"\n{'app':<15} {'set':<7} {'accuracy':>9} {'no DOM analysis':>16}")
    for app in list(SEEN_APPS) + list(UNSEEN_APPS):
        group = "seen" if app in SEEN_APPS else "unseen"
        print(f"{app:<15} {group:<7} {with_dom[app] * 100:>8.1f}% {without_dom[app] * 100:>15.1f}%")

    seen_mean = float(np.mean([with_dom[a] for a in SEEN_APPS]))
    unseen_mean = float(np.mean([with_dom[a] for a in UNSEEN_APPS]))
    drop = float(np.mean(list(with_dom.values()))) - float(np.mean(list(without_dom.values())))
    print(f"\nSeen average:   {seen_mean * 100:.1f}%   (paper: 91.3%)")
    print(f"Unseen average: {unseen_mean * 100:.1f}%   (paper: 89.2%)")
    print(f"Accuracy drop without DOM analysis: {drop * 100:.1f} points (paper: ~5)")


if __name__ == "__main__":
    main()
