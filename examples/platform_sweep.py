#!/usr/bin/env python3
"""Platform-parameter sweep walkthrough: core counts x thermal curves end to end.

The scenario matrix can sweep the *platform itself*, not just pick between
the two named SoCs.  This example:

1. inspects a thermal throttling curve (``repro.hardware.thermal``) and its
   first-order heat-up dynamics,
2. builds a ``PlatformSweep`` crossing big-core counts with thermal curves,
3. expands it through a ``ScenarioMatrix`` and runs every derived platform
   with one pooled ``ScenarioRunner``, and
4. renders the sweep tables and writes the ``SCENARIOS_sweep_*.json``
   artefact — which is a pure function of the matrix, so any ``jobs``
   value yields a byte-identical file.

Usage:
    python examples/platform_sweep.py [jobs]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import (
    scenario_energy_table,
    sweep_energy_table,
    sweep_platform_table,
)
from repro.hardware.thermal import ThermalState, get_thermal_model
from repro.scenarios import (
    PlatformSweep,
    ScenarioMatrix,
    ScenarioRunner,
    results_to_rows,
    write_results,
)


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    # 1. A thermal curve is a piecewise frequency-vs-temperature table plus
    #    exponential heat-up/cool-down.  Watch a cramped chassis heat under
    #    a sustained 3 W load and throttle in steps.
    model = get_thermal_model("cramped_chassis")
    state = ThermalState(model=model)
    print(f"=== {model.name}: heat-up under a sustained 3 W load ===")
    for step in range(6):
        print(
            f"  t={step * 30:>3d}s  T={state.temperature_c:5.1f}C  cap={state.cap_mhz} MHz"
        )
        state.advance(power_w=3.0, dt_s=30.0)

    # 2+3. Sweep big-core count x thermal curve on the primary platform.
    #    Cells named like 'exynos5410+b2+th.cramped_chassis/default/core'
    #    each derive their own AcmpSystem; thermal dwell follows the
    #    regime's session length, so short sessions throttle less.
    matrix = ScenarioMatrix(
        name="example_sweep",
        platform_sweep=PlatformSweep(
            platforms=("exynos5410",),
            big_core_counts=(None, 2),
            thermal_models=(None, "cramped_chassis"),
        ),
        regimes=("default",),
        app_mixes=("core",),
        schemes=("Interactive", "EBS"),
    )
    specs = matrix.expand()
    print(f"\n=== sweeping {len(specs)} derived platforms ({jobs} worker(s)) ===")
    print(sweep_platform_table(specs))

    results = ScenarioRunner(jobs=jobs).run(specs)
    rows = results_to_rows(results)
    print()
    print(sweep_energy_table(rows))
    print()
    print(scenario_energy_table(rows))

    # 4. Persist the artefact (bit-identical for any jobs value).
    path = write_results(results, "results/SCENARIOS_sweep_example.json", matrix=matrix.name)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
