#!/usr/bin/env python3
"""Fleet-scale evaluation: sample a 200-device population, print its win/loss table.

The paper evaluates one device; a deployed scheduler meets a *population* —
different platform variants, session regimes, app mixes, chassis, ambients,
and fault conditions.  This example samples the default 200-device fleet
(every device an independent ``stable_seed``-derived draw, so the population
is identical on every machine), evaluates a small subset end to end, and
prints the per-slice win/loss table: which corner of the fleet each scheme
helps, and which it hurts.

Run the full 200-device fleet from the CLI instead (it takes a few minutes
and parallelises)::

    PYTHONPATH=src python -m repro fleet run --fleet default --jobs 0
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.analysis.reporting import fleet_sample_table, fleet_slice_table
from repro.fleet import DevicePopulation, FleetRunner, fleet_to_payload, get_fleet_preset


def main() -> None:
    fleet = get_fleet_preset("default")
    population = DevicePopulation(fleet)

    # -- 1. the population itself (no simulation) --------------------------------
    print(f"fleet {fleet.name!r}: {len(population)} devices, seed {fleet.seed}")
    for axis in ("platform", "regime", "thermal", "fault"):
        counts = Counter(device.axis_value(axis) for device in population)
        summary = ", ".join(f"{value} x{n}" for value, n in counts.most_common())
        print(f"  {axis:<9} {summary}")
    print()
    print("first ten devices:")
    print(fleet_sample_table(population.devices()[:10]))
    print()

    # -- 2. evaluate a slice of it ----------------------------------------------
    # Devices keep their identity when the size shrinks (device i is the
    # same draw in any population size), so a 24-device run is a faithful
    # prefix of the full 200-device fleet.
    subset = dataclasses.replace(fleet, size=24)
    result = FleetRunner(jobs=2).run(subset)
    payload = fleet_to_payload(result)

    print(f"evaluated {payload['n_devices']} devices, {payload['n_sessions']} sessions")
    for scheme, block in payload["population"].items():
        quantiles = block["percentiles"]["energy_mj"]
        print(
            f"  {scheme:<12} energy p50 {quantiles['p50']:.0f} mJ, "
            f"p95 {quantiles['p95']:.0f} mJ, p99 {quantiles['p99']:.0f} mJ"
        )
    print()
    print("per-slice win/loss vs the baseline scheme "
          f"({subset.baseline}; w/l/t = devices cheaper/dearer/equal):")
    print(fleet_slice_table(payload))


if __name__ == "__main__":
    main()
