#!/usr/bin/env python3
"""Confidence-threshold sensitivity study (Fig. 14).

Sweeps the predictor's cumulative-confidence threshold and reports, for a
handful of applications, PES energy and QoS-violation reduction normalised
to EBS, plus the resulting prediction degree — reproducing the robustness
analysis that justifies the paper's 70% default.
"""

from __future__ import annotations

import numpy as np

from repro import AppCatalog, PredictorTrainer, Simulator, TraceGenerator
from repro.analysis.sensitivity import sweep_confidence_threshold
from repro.webapp.apps import SEEN_APPS

THRESHOLDS = (0.3, 0.5, 0.7, 0.9, 1.0)
APPS = ("cnn", "ebay", "google", "slashdot", "sina")


def main() -> None:
    catalog = AppCatalog()
    generator = TraceGenerator(catalog=catalog)
    simulator = Simulator(catalog=catalog)

    training = generator.generate_many(list(SEEN_APPS), traces_per_app=6, base_seed=0)
    learner = PredictorTrainer(catalog=catalog).train(training).learner

    traces = [generator.generate(app, seed=800_000 + i) for i, app in enumerate(APPS)]
    print(f"Sweeping confidence thresholds {[f'{t:.0%}' for t in THRESHOLDS]} over {len(traces)} sessions...")
    sweep = sweep_confidence_threshold(simulator, learner, traces, THRESHOLDS)

    print(f"\n{'threshold':>9} {'energy vs EBS':>14} {'QoS reduction':>14} {'pred. degree':>13}")
    for threshold in THRESHOLDS:
        rows = [e for e in sweep if e.confidence_threshold == threshold]
        energy = float(np.mean([e.energy_vs_ebs for e in rows]))
        reduction = float(np.mean([e.qos_violation_reduction for e in rows]))
        degree = float(np.mean([e.mean_prediction_degree for e in rows]))
        print(f"{threshold:>8.0%} {energy * 100:>13.1f}% {reduction * 100:>13.1f}% {degree:>13.2f}")

    print(
        "\nAs in the paper: at 100% the predictor cannot speculate and PES degenerates to EBS;"
        "\nrelaxing to ~70% unlocks the benefit, and relaxing further changes little."
    )


if __name__ == "__main__":
    main()
