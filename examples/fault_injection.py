#!/usr/bin/env python3
"""Fault-injection walkthrough: how gracefully does each scheme degrade?

The fault subsystem (``repro.faults``) injects seeded faults at four seams
of a session replay — validated predictions flip to mispredictions, the
thermal sensor sticks/lags/drifts, DVFS transitions fail and hold the
prior configuration, and the event stream drops/duplicates/jitters events.
A zero-rate (or absent) spec is bit-identical to a fault-free run, so the
fault axis composes with every existing scenario axis.  This example:

1. replays one session under the ``chaos`` preset and prints the per-seam
   telemetry (injected vs recovered counts, fault-attributed energy),
2. sweeps the predictor flip rate and plots (in text) the PES-vs-EBS
   degradation curve — the headline robustness question: how fast does
   the *predictive* scheme's advantage erode as its predictions are
   corrupted, and when does it fall behind the reactive baseline it beat?

Usage:
    python examples/fault_injection.py [jobs]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import scenario_faults_table
from repro.faults import FaultSpec, PredictorFaults, get_fault_preset
from repro.scenarios import ScenarioRunner, ScenarioSpec


def inspect_one_faulty_session() -> None:
    """Replay one scenario under the chaos preset and print the seam telemetry."""
    runner = ScenarioRunner(jobs=1)
    (result,) = runner.run(
        [
            ScenarioSpec(
                name="chaos_demo",
                regime="flash_crowd",
                apps=("cnn",),
                schemes=("EBS", "PES"),
                faults=get_fault_preset("chaos"),
            )
        ]
    )

    print("=== one flash-crowd cnn scenario under the 'chaos' preset ===")
    for scheme in ("EBS", "PES"):
        faults = result.aggregates[scheme].faults
        assert faults is not None
        print(
            f"{scheme:<4} predictor {faults.predictor_injected}/{faults.predictor_recovered}"
            f"  dvfs {faults.dvfs_injected}/{faults.dvfs_recovered}"
            f"  sensor {faults.sensor_injected}/{faults.sensor_recovered}"
            f"  stream drop={faults.events_dropped} dup={faults.events_duplicated}"
            f" jitter={faults.events_jittered} recovered={faults.stream_recovered}"
            f"  fault energy {faults.fault_energy_mj:.0f} mJ"
        )
    print()
    print(scenario_faults_table([result]))


def predictor_degradation_curve(jobs: int) -> None:
    """PES vs EBS as the predictor fault rate climbs (Fig.-10-style waste)."""
    flip_rates = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8)
    runner = ScenarioRunner(jobs=jobs)
    specs = [
        ScenarioSpec(
            name=f"flip_{rate:g}",
            regime="default",
            apps="core",
            schemes=("EBS", "PES"),
            faults=(
                FaultSpec(
                    name=f"flip_{rate:g}",
                    predictor=PredictorFaults(flip_rate=rate),
                )
                if rate > 0
                else None
            ),
        )
        for rate in flip_rates
    ]
    results = runner.run(specs)

    print("\n=== PES-vs-EBS degradation as predictions are corrupted ===")
    print(
        f"{'flip rate':>9} {'EBS mJ':>10} {'PES mJ':>10} {'PES vs EBS':>11} "
        f"{'PES QoS viol.':>14}"
    )
    for rate, result in zip(flip_rates, results):
        ebs = result.aggregates["EBS"].overall
        pes = result.aggregates["PES"].overall
        ratio = pes.total_energy_mj / ebs.total_energy_mj
        bar = "#" * round(ratio * 40)
        print(
            f"{rate * 100:>8.0f}% {ebs.total_energy_mj:>10.0f} "
            f"{pes.total_energy_mj:>10.0f} {ratio * 100:>10.1f}% "
            f"{pes.qos_violation_rate * 100:>13.1f}%  {bar}"
        )
    print(
        "\nEach flipped validation sends PES through its real misprediction\n"
        "recovery (sprint-to-deadline, consecutive-miss disable), so the curve\n"
        "shows the scheme's actual failure mode: energy creeps toward — and\n"
        "past — the reactive baseline as the predictor is corrupted, while\n"
        "EBS, which never consults the predictor, is untouched by this seam."
    )


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    inspect_one_faulty_session()
    predictor_degradation_curve(jobs)


if __name__ == "__main__":
    main()
