#!/usr/bin/env python3
"""Full evaluation: every application, every scheduler (Figs. 11-13).

Trains the predictor on the 12 seen applications, generates fresh
evaluation sessions for all 18 applications, replays each under
Interactive, Ondemand, EBS, PES, and the oracle, and prints the normalised
energy, QoS violation, and Pareto summary.

Usage:
    python examples/full_evaluation.py [traces_per_app]

``traces_per_app`` defaults to 1 so the example finishes in a couple of
minutes; the benchmark harness (benchmarks/) runs the larger version.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import AppCatalog, PredictorTrainer, Simulator, TraceGenerator
from repro.analysis.pareto import non_dominated_schemes, points_from_metrics
from repro.runtime.metrics import aggregate_results
from repro.webapp.apps import SEEN_APPS, UNSEEN_APPS

SCHEMES = ["Interactive", "Ondemand", "EBS", "PES", "Oracle"]


def main() -> None:
    traces_per_app = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    catalog = AppCatalog()
    generator = TraceGenerator(catalog=catalog)
    simulator = Simulator(catalog=catalog)

    print("Training the event predictor on the 12 seen applications...")
    training = generator.generate_many(list(SEEN_APPS), traces_per_app=6, base_seed=0)
    learner = PredictorTrainer(catalog=catalog).train(training).learner

    print(f"Generating {traces_per_app} evaluation trace(s) per application...")
    evaluation = generator.generate_many(
        list(SEEN_APPS) + list(UNSEEN_APPS), traces_per_app, base_seed=700_000
    )

    print("Replaying every trace under every scheme (this is the slow part)...")
    scheme_results = simulator.compare(evaluation, SCHEMES, learner=learner)

    # Per-app normalised energy (Fig. 11) and QoS violation (Fig. 12).
    normalised = Simulator.normalised_energy_by_app(scheme_results, baseline="Interactive")
    print(f"\n{'app':<15} {'set':<7}" + "".join(f"{s:>13}" for s in SCHEMES) + "   (energy % of Interactive)")
    for app in list(SEEN_APPS) + list(UNSEEN_APPS):
        group = "seen" if app in SEEN_APPS else "unseen"
        print(
            f"{app:<15} {group:<7}"
            + "".join(f"{normalised[s][app] * 100:>12.1f}%" for s in SCHEMES)
        )

    print(f"\n{'scheme':<13} {'norm. energy':>13} {'QoS violation':>15}")
    metrics = {scheme: aggregate_results(results) for scheme, results in scheme_results.items()}
    base_energy = metrics["Interactive"].total_energy_mj
    for scheme in SCHEMES:
        print(
            f"{scheme:<13} {metrics[scheme].total_energy_mj / base_energy * 100:>12.1f}% "
            f"{metrics[scheme].qos_violation_rate * 100:>14.1f}%"
        )

    for label, apps in (("seen", SEEN_APPS), ("unseen", UNSEEN_APPS)):
        pes = float(np.mean([normalised["PES"][a] for a in apps]))
        ebs = float(np.mean([normalised["EBS"][a] for a in apps]))
        print(
            f"\n[{label}] PES saves {(1 - pes) * 100:.1f}% energy vs Interactive "
            f"and {(1 - pes / ebs) * 100:.1f}% vs EBS"
        )

    points = points_from_metrics(metrics, baseline="Interactive")
    print(f"\nPareto frontier (Fig. 13): {sorted(non_dominated_schemes(points))}")


if __name__ == "__main__":
    main()
