#!/usr/bin/env python3
"""Per-event thermal dynamics walkthrough: heat-up, throttle, cool-down — live.

PR 4 applied a thermal curve *per scenario*: one sustainable cap, computed
as if the session ran flat out for its whole length.  The engines now
thread a live ``ThermalState`` through the event loop instead
(``thermal_mode="dynamic"``): temperature advances through every active
interval at that interval's power and through idle gaps at idle power, and
the *instantaneous* cap shrinks the configuration space each scheduler
plans the next event over.  This example:

1. replays one flash-crowd session on a cramped chassis and prints the
   per-event temperature/cap trace — watch the package heat through the
   burst, cross a throttle step, and cool through think-time gaps,
2. runs the same curve in ``static`` and ``dynamic`` modes side by side and
   compares the new thermal metrics (peak temperature, throttle residency,
   throttle-induced slowdown), and
3. shows the headline inversion: the static collapse throttles *marathons*
   hardest (it assumes flat-out dwell for the whole session), while live
   dynamics throttle *bursts* — flash crowds run ~50% duty at ~2 W and
   cross the curve's thresholds mid-session; low-duty marathons never do.

Usage:
    python examples/thermal_dynamics.py [jobs]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import scenario_thermal_table
from repro.hardware.platforms import exynos_5410
from repro.hardware.thermal import NO_THROTTLE_MHZ, ThermalState, get_thermal_model
from repro.runtime.simulator import SimulationSetup, Simulator
from repro.scenarios import ScenarioRunner, ScenarioSpec
from repro.traces.generator import TraceGenerator
from repro.traces.presets import get_regime
from repro.webapp.apps import AppCatalog


def trace_temperature_per_event() -> None:
    """Replay one bursty session and print the live temperature/cap trace."""
    model = get_thermal_model("cramped_chassis")
    regime = get_regime("flash_crowd")
    catalog = AppCatalog()
    generator = TraceGenerator(
        catalog=catalog, session=regime.session, workload_params=regime.workload_params
    )
    trace = generator.generate("cnn", seed=500_000)

    # Re-derive the temperature trajectory the engine sees: idle power
    # through gaps, the event's mean power through its active interval.
    setup = SimulationSetup(system=exynos_5410(), thermal=model)
    simulator = Simulator(setup=setup, catalog=catalog)
    (result,) = simulator.run_scheme([trace], "EBS")

    state = ThermalState(model=model)
    clock = 0.0
    print(f"=== one flash-crowd cnn session on {model.name} (EBS) ===")
    print(f"{'event':>5} {'start':>8} {'T before':>9} {'cap':>9} {'config':<16}")
    for outcome in result.outcomes[:20]:
        busy_ms = outcome.finish_ms - outcome.start_ms
        state.advance(setup.power_table.idle_w, max(0.0, outcome.start_ms - clock) / 1000.0)
        cap = "open" if state.cap_mhz >= NO_THROTTLE_MHZ else f"{state.cap_mhz} MHz"
        print(
            f"{outcome.index:>5} {outcome.start_ms / 1000:>7.1f}s "
            f"{state.temperature_c:>8.1f}C {cap:>9} {outcome.config_label:<16}"
        )
        power_w = outcome.active_energy_mj / busy_ms if busy_ms > 0 else 0.0
        state.advance(power_w, busy_ms / 1000.0)
        clock = outcome.finish_ms
    assert result.thermal is not None
    print(
        f"  ... session peak {result.thermal.peak_temperature_c:.1f}C, "
        f"throttle residency {result.thermal.throttle_residency * 100:.1f}%, "
        f"throttle slowdown {result.thermal.throttle_slowdown * 100:+.1f}%"
    )


def compare_static_and_dynamic(jobs: int) -> None:
    """The same curve/regime grid, collapsed per scenario vs applied per event."""
    runner = ScenarioRunner(jobs=jobs)
    specs = [
        ScenarioSpec(
            name=f"{regime}/{mode}",
            regime=regime,
            apps=("cnn",),
            schemes=("Interactive", "EBS"),
            thermal="cramped_chassis",
            thermal_mode=mode,
        )
        for regime in ("flash_crowd", "marathon")
        for mode in ("static", "dynamic")
    ]
    results = runner.run(specs)

    print("\n=== static collapse vs live dynamics (cramped_chassis) ===")
    print(f"{'scenario':<24} {'mode':<8} {'big-top MHz':>11} {'Interactive mJ':>15}")
    for spec, result in zip(specs, results):
        top = spec.system().big_cluster.max_frequency_mhz
        energy = result.aggregates["Interactive"].overall.total_energy_mj
        mode = spec.thermal_mode
        print(f"{spec.name:<24} {mode:<8} {top:>11} {energy:>15.0f}")

    print()
    print(scenario_thermal_table(results))
    print(
        "\nNote the inversion: static mode pre-throttles the marathon platform\n"
        "(flat-out dwell for the whole session) and leaves the flash crowd\n"
        "nearly untouched; live dynamics show bursts crossing the thresholds\n"
        "mid-session while low-duty marathons never heat past them."
    )


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    trace_temperature_per_event()
    compare_static_and_dynamic(jobs)


if __name__ == "__main__":
    main()
